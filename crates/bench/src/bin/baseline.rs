//! Performance baseline: times the matching flow, single-trace extension,
//! the DRC scan, and the **multi-board fleet engine** on the paper's cases
//! plus the stress boards, for each engine configuration, and emits
//! `BENCH_PR10.json` (schema v10) — the tenth point of the repo's
//! performance trajectory. The `fleet` section times a serving-size fleet
//! routed per-board sequentially, batched without library sharing, and
//! batched **with** the shared obstacle-library world
//! (`meander_fleet::route_fleet` — bit-identical outputs, asserted here).
//! The `hardening` section records the cancellation drain latency plus,
//! with `--features fault`, an injected-panic smoke proving a crashing
//! board costs one board; the `resilience` section measures the retry
//! ladder's happy-path overhead and injected-fault recovery; the
//! `session` section measures incremental re-routing through
//! `FleetSession` on a 1000-board fleet at 1% churn; the `cache` section
//! measures the content-addressed result cache on a 1000-board
//! duplicate-heavy fleet (warm-pass hit rate asserted ≥ 90%, warm
//! throughput ≥ 3× uncached, one library edit invalidating < 20% of the
//! entries — all counter-asserted, every pass bit-identical to uncached
//! routing). Schema v10 adds the **sched** section: the typed-priority
//! scheduler's serving tiers on one shared single-worker `Scheduler` —
//! interactive re-route p50/p99 latency with and without a concurrent
//! 1000-board batch fleet (loaded p99 asserted ≤ 2× unloaded), and the
//! speculative warm-up pass's cold-start hit-rate lift on the dup-rate-0.9
//! fleet (asserted positive). Printed deltas compare against the recorded
//! `BENCH_PR9.json`.
//!
//! ```text
//! cargo run --release -p meander-bench --bin baseline [--smoke] [out.json]
//! ```
//!
//! Configurations:
//!
//! * `naive`       — rebuild-per-iteration engine, serial driver
//! * `pr1path`     — indexed incremental engine with the upper-bound
//!   profile off (`dp_profile: false`): the PR 1 code path, re-measured on
//!   the current tree so the extension speedups compare like with like
//! * `incremental` — indexed engine + DP upper-bound profile, scalar
//!   geometry kernels (the PR 2 code path)
//! * `batched`     — `incremental` with `batch_kernels: true`: stage-1 and
//!   profile sweeps on the SoA lane-parallel kernels (the PR 3 code path,
//!   uniform-grid indexes throughout)
//! * `rtree`       — `batched` with `index: IndexKind::RTree`: the world
//!   edge index, per-pop shrink contexts, and DRC scan index are STR
//!   R-trees (and the batched DRC obstacle pass may take its edge-indexed
//!   candidate-outer path)
//! * `parallel`    — indexed engine, parallel driver
//!
//! The fleet rows are measured on this container honestly: at 1 CPU the
//! scheduler runs on one worker (steal counters ≈ 0) and the shrink
//! side-context worker pair stays inactive — the shared-vs-unshared delta
//! isolates the library-index amortization alone. Re-measure on multicore
//! hardware for scheduler scaling.
//!
//! `--smoke` runs the table1:5 matching + DRC slice plus a 4-board mini
//! fleet, a duplicate-heavy 4-board fleet routed twice through the result
//! cache (the warm pass must hit at least once), a mixed-tier mini run
//! (interactive re-routes preempting a concurrent batch fleet while a
//! speculative warm-up queues behind both, all on one shared scheduler),
//! and the cancellation-drain case (seconds, debug or release) so CI
//! keeps both binaries' paths from rotting between perf PRs; with
//! `--features fault` it also exercises the injected-panic fleet.

use meander_core::dp::{extend_segment_dp, DpInput, DpSession, HeightBounds};
use meander_core::extend::{extend_trace, ExtendInput};
use meander_core::match_all_groups;
use meander_core::pattern::placements_window;
#[cfg(feature = "fault")]
use meander_core::plan_board_units;
use meander_core::{match_board_group, DpStats, ExtendConfig, IndexKind};
use meander_drc::{
    check_layout_batched_stats_with, check_layout_brute, check_layout_indexed, CheckInput,
    TraceGeometry,
};
#[cfg(feature = "fault")]
use meander_fleet::FaultPlan;
use meander_fleet::{
    route_fleet, route_fleet_resilient, warm_fleet_cache, BoardSet, CancelToken, Edit, EditScope,
    FleetConfig, FleetSession, ResultCache, RetryPolicy, Scheduler, Tier,
};
use meander_geom::batch::BatchStats;
use meander_geom::Vector;
use meander_layout::gen::{
    dup_fleet_boards, dup_fleet_boards_small, edit_stream, fleet_boards, fleet_boards_small,
    stress_board, stress_mixed_board, table1_case, table2_case, FleetCase,
};
use meander_layout::Board;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

// Every measured config pins `index` explicitly so building the bench with
// the `rtree` feature cannot silently flip a comparison column.
fn naive_config() -> ExtendConfig {
    ExtendConfig {
        incremental: false,
        parallel: false,
        batch_kernels: false,
        index: IndexKind::Grid,
        ..ExtendConfig::default()
    }
}

fn pr1path_config() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        dp_profile: false,
        batch_kernels: false,
        index: IndexKind::Grid,
        ..ExtendConfig::default()
    }
}

fn incremental_config() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        batch_kernels: false,
        index: IndexKind::Grid,
        ..ExtendConfig::default()
    }
}

fn batched_config() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        batch_kernels: true,
        index: IndexKind::Grid,
        ..ExtendConfig::default()
    }
}

fn rtree_config() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        batch_kernels: true,
        index: IndexKind::RTree,
        ..ExtendConfig::default()
    }
}

fn parallel_config() -> ExtendConfig {
    ExtendConfig {
        index: IndexKind::Grid,
        ..ExtendConfig::default()
    }
}

struct CaseRow {
    name: String,
    naive_s: f64,
    incremental_s: f64,
    batched_s: f64,
    rtree_s: f64,
    parallel_s: f64,
    max_err_pct: f64,
    patterns: usize,
}

/// Median of `reps` timings of `f` (single-shot wall clocks on a shared
/// container swing by tens of percent; medians make the recorded ratios
/// reproducible). Returns the median seconds and the first run's value.
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> (f64, T)) -> (f64, T) {
    let (s0, out) = f();
    let mut times = vec![s0];
    for _ in 1..reps {
        times.push(f().0);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], out)
}

fn time_match<F: Fn() -> Board>(make: F, config: &ExtendConfig, reps: usize) -> (f64, f64, usize) {
    let (secs, (err, patterns)) = median_secs(reps, || {
        let mut board = make();
        let t0 = Instant::now();
        let report = match_board_group(&mut board, 0, config);
        let secs = t0.elapsed().as_secs_f64();
        let patterns = report.traces.iter().map(|t| t.patterns).sum();
        (secs, (report.max_error() * 100.0, patterns))
    });
    (secs, err, patterns)
}

fn run_case<F: Fn() -> Board>(name: &str, make: F) -> CaseRow {
    let (naive_s, _, _) = time_match(&make, &naive_config(), 1);
    let (incremental_s, max_err_pct, patterns) = time_match(&make, &incremental_config(), 3);
    let (batched_s, batched_err, batched_patterns) = time_match(&make, &batched_config(), 3);
    assert_eq!(
        patterns, batched_patterns,
        "{name}: batch kernels must not change the outcome"
    );
    assert_eq!(max_err_pct.to_bits(), batched_err.to_bits());
    let (rtree_s, rtree_err, rtree_patterns) = time_match(&make, &rtree_config(), 3);
    assert_eq!(
        patterns, rtree_patterns,
        "{name}: the R-tree index must not change the outcome"
    );
    assert_eq!(max_err_pct.to_bits(), rtree_err.to_bits());
    let (parallel_s, _, _) = time_match(&make, &parallel_config(), 1);
    let row = CaseRow {
        name: name.to_string(),
        naive_s,
        incremental_s,
        batched_s,
        rtree_s,
        parallel_s,
        max_err_pct,
        patterns,
    };
    println!(
        "{:<18} naive {:>9.4}s  incremental {:>9.4}s  batched {:>9.4}s  rtree {:>9.4}s  parallel {:>9.4}s  (x{:.1} naive, x{:.2} batch, x{:.2} rtree)  maxerr {:.2}%",
        row.name,
        row.naive_s,
        row.incremental_s,
        row.batched_s,
        row.rtree_s,
        row.parallel_s,
        row.naive_s / row.incremental_s.max(1e-12),
        row.incremental_s / row.batched_s.max(1e-12),
        row.batched_s / row.rtree_s.max(1e-12),
        row.max_err_pct
    );
    row
}

struct ExtendRow {
    name: String,
    naive_s: f64,
    pr1path_s: f64,
    incremental_s: f64,
    batched_s: f64,
    iterations: usize,
    patterns: usize,
    stats: DpStats,
    batch: BatchStats,
}

fn run_extend_case(name: &str, case_no: usize) -> ExtendRow {
    let case = table2_case(case_no);
    let trace = case.board.trace(case.trace).expect("trace").clone();
    let area = case
        .board
        .area(case.trace)
        .expect("area")
        .polygons()
        .to_vec();
    let obstacles: Vec<meander_geom::Polygon> = case
        .board
        .obstacles()
        .iter()
        .map(|o| o.polygon().clone())
        .collect();
    let rules = *trace.rules();
    let target = trace.length() * 50.0;
    let input = ExtendInput {
        trace: trace.centerline(),
        target,
        rules: &rules,
        area: &area,
        obstacles: &obstacles,
    };
    let long_run = |mut c: ExtendConfig| {
        c.max_iterations = 2000;
        c
    };

    let timed = |config: ExtendConfig| {
        median_secs(3, || {
            let t0 = Instant::now();
            let out = extend_trace(&input, &long_run(config.clone()));
            (t0.elapsed().as_secs_f64(), out)
        })
    };
    let (naive_s, slow) = timed(naive_config());
    let (pr1path_s, pr1) = timed(pr1path_config());
    let (incremental_s, fast) = timed(incremental_config());
    let (batched_s, batched) = timed(batched_config());
    assert_eq!(
        slow.patterns, fast.patterns,
        "{name}: engines must agree on pattern count"
    );
    assert_eq!(
        pr1.patterns, fast.patterns,
        "{name}: profile must not change the outcome"
    );
    assert!((pr1.achieved - fast.achieved).abs() < 1e-9);
    // The batch kernels are bit-identical, not merely equivalent.
    assert_eq!(batched.patterns, fast.patterns);
    assert_eq!(
        batched.achieved.to_bits(),
        fast.achieved.to_bits(),
        "{name}: batch kernels must be bit-identical"
    );
    assert_eq!(batched.trace.points(), fast.trace.points());
    let s = fast.stats;
    println!(
        "{:<18} naive {:>8.4}s  pr1path {:>8.4}s  profile {:>8.4}s  batched {:>8.4}s  (x{:.2} vs naive, x{:.2} vs scalar)  {} iters, {} patterns, hq {}→{} exec (skip {:.2})",
        name,
        naive_s,
        pr1path_s,
        incremental_s,
        batched_s,
        naive_s / batched_s.max(1e-12),
        incremental_s / batched_s.max(1e-12),
        fast.iterations,
        fast.patterns,
        s.hq_requested,
        s.hq_executed,
        s.skip_rate(),
    );
    ExtendRow {
        name: name.to_string(),
        naive_s,
        pr1path_s,
        incremental_s,
        batched_s,
        iterations: fast.iterations,
        patterns: fast.patterns,
        stats: s,
        batch: batched.stats.batch,
    }
}

struct DrcRow {
    name: String,
    brute_s: f64,
    indexed_s: f64,
    batched_s: f64,
    rtree_s: f64,
    violations: usize,
    segments: usize,
    batch: BatchStats,
}

fn run_drc_case(name: &str, board: &Board) -> DrcRow {
    let input = CheckInput {
        traces: board
            .traces()
            .map(|(id, t)| TraceGeometry {
                id: id.0,
                centerline: t.centerline().clone(),
                width: t.width(),
                rules: *t.rules(),
                area: board
                    .area(id)
                    .map(|a| a.polygons().to_vec())
                    .unwrap_or_default(),
                coupled_with: vec![],
            })
            .collect(),
        obstacles: board
            .obstacles()
            .iter()
            .map(|o| o.polygon().clone())
            .collect(),
    };
    let segments: usize = input
        .traces
        .iter()
        .map(|t| t.centerline.segment_count())
        .sum();

    let t0 = Instant::now();
    let brute = check_layout_brute(&input);
    let brute_s = t0.elapsed().as_secs_f64();
    let (indexed_s, indexed) = median_secs(5, || {
        let t0 = Instant::now();
        let v = check_layout_indexed(&input);
        (t0.elapsed().as_secs_f64(), v)
    });
    let (batched_s, (batched, batch)) = median_secs(5, || {
        let t0 = Instant::now();
        let v = check_layout_batched_stats_with(&input, IndexKind::Grid);
        (t0.elapsed().as_secs_f64(), v)
    });
    let (rtree_s, (rtreed, _)) = median_secs(5, || {
        let t0 = Instant::now();
        let v = check_layout_batched_stats_with(&input, IndexKind::RTree);
        (t0.elapsed().as_secs_f64(), v)
    });
    assert_eq!(brute, indexed, "{name}: DRC paths must agree exactly");
    assert_eq!(brute, batched, "{name}: batched DRC must agree exactly");
    assert_eq!(brute, rtreed, "{name}: R-tree DRC must agree exactly");
    println!(
        "{:<18} brute {:>9.4}s  indexed {:>9.4}s  batched {:>9.4}s  rtree {:>9.4}s  (x{:.1} brute, x{:.2} batch, x{:.2} rtree)  {} segments, {} violations",
        name,
        brute_s,
        indexed_s,
        batched_s,
        rtree_s,
        brute_s / indexed_s.max(1e-12),
        indexed_s / batched_s.max(1e-12),
        batched_s / rtree_s.max(1e-12),
        segments,
        brute.len()
    );
    DrcRow {
        name: name.to_string(),
        brute_s,
        indexed_s,
        batched_s,
        rtree_s,
        violations: brute.len(),
        segments,
        batch,
    }
}

struct ResolveRow {
    m: usize,
    scratch_s: f64,
    resolve_s: f64,
    points_per_resolve: f64,
    memo_hit_rate: f64,
}

/// Times the [`DpSession`] prefix-reuse path directly: a from-scratch solve
/// vs invalidate-a-mid-window + resolve, with the height closure running
/// real URA-shrink queries against an obstacle field (the engine's actual
/// per-probe cost) plus a mutable per-position overlay standing in for the
/// geometry a splice changes.
fn run_dp_resolve_case(m: usize) -> ResolveRow {
    use meander_core::context::{ShrinkContext, WorldContext};
    use meander_core::shrink::{max_pattern_height_scratch, ShrinkScratch};
    use meander_geom::{Frame, Point, Polygon, Segment};

    let config = ExtendConfig::default();
    let seg_len = 200.0;
    let ldisc = seg_len / m as f64;
    let seg = Segment::new(Point::new(0.0, 0.0), Point::new(seg_len, 0.0));
    let frame = Frame::from_segment(&seg).expect("non-degenerate");
    let obstacles: Vec<Polygon> = (0..48)
        .map(|i| {
            let x = 6.0 + (i % 16) as f64 * 12.0;
            let y = 9.0 + (i / 16) as f64 * 11.0;
            Polygon::regular(Point::new(x, y), 1.5, 8, 0.0)
        })
        .collect();
    let world = WorldContext {
        area: vec![Polygon::rectangle(
            Point::new(-20.0, -80.0),
            Point::new(seg_len + 20.0, 80.0),
        )],
        obstacles,
        other_uras: vec![],
    };
    let ctx = ShrinkContext::build(&world, &frame, seg_len, 1);
    let scratch = std::cell::RefCell::new(ShrinkScratch::new());
    let (gap, h_init, h_min) = (8.0, 40.0, 2.0);
    let field = std::cell::RefCell::new(vec![h_init; m + 1]);
    let height = |lo: usize, hi: usize, _: i8| -> f64 {
        let cap = {
            let f = field.borrow();
            f[lo..=hi].iter().fold(f64::INFINITY, |a, &b| a.min(b))
        };
        if cap <= 0.0 {
            return 0.0;
        }
        max_pattern_height_scratch(
            &ctx,
            lo as f64 * ldisc,
            hi as f64 * ldisc,
            gap,
            cap.min(h_init),
            h_min,
            &mut scratch.borrow_mut(),
        )
        .height
    };
    let input = DpInput {
        m,
        ldisc,
        gap_steps: 8,
        protect_steps: 4,
        min_width_steps: 8,
        max_width_steps: 48,
        height: &height,
        bounds: HeightBounds::Uniform(f64::INFINITY),
        config: &config,
    };
    let reps = 300;

    let t0 = Instant::now();
    let mut out = extend_segment_dp(&input);
    for _ in 1..reps {
        out = extend_segment_dp(&input);
    }
    let scratch_s = t0.elapsed().as_secs_f64() / reps as f64;

    // Invalidation window: where a mid-segment restored pattern actually
    // sits (the splice window of one engine pop — narrow relative to the
    // segment, with untouched state on both sides: the prefix is reused
    // verbatim, suffix probes answer from the memo).
    let (a, b) = out
        .placements
        .iter()
        .min_by_key(|p| (p.lo + p.hi).abs_diff(m))
        .map(|p| placements_window(std::slice::from_ref(p)).expect("one placement"))
        .unwrap_or((m / 2, m / 2 + 8));
    let mut session = DpSession::new(&input, true);
    let _ = session.solve(&input);
    let before = *session.stats();
    let t0 = Instant::now();
    for _ in 0..reps {
        {
            let mut f = field.borrow_mut();
            for x in a..=b.min(m) {
                f[x] = if f[x] == 0.0 { 4.0 } else { 0.0 };
            }
        }
        session.invalidate_window(a, b);
        let _ = session.solve(&input);
    }
    let resolve_s = t0.elapsed().as_secs_f64() / reps as f64;
    let s = session.stats();
    let points_per_resolve = (s.points_evaluated - before.points_evaluated) as f64 / reps as f64;
    let memo_hit_rate = (s.hq_memo_hits - before.hq_memo_hits) as f64
        / ((s.hq_requested - before.hq_requested) as f64).max(1.0);
    println!(
        "dp_resolve m={m:<4} scratch {:>9.1}µs  resolve {:>9.1}µs  (x{:.1})  {:.0}/{} rows, memo hit {:.2}",
        scratch_s * 1e6,
        resolve_s * 1e6,
        scratch_s / resolve_s.max(1e-12),
        points_per_resolve,
        m,
        memo_hit_rate
    );
    ResolveRow {
        m,
        scratch_s,
        resolve_s,
        points_per_resolve,
        memo_hit_rate,
    }
}

struct FleetRow {
    name: String,
    boards: usize,
    jobs: usize,
    units: usize,
    /// Per-board sequential `match_all_groups` over materialized twins.
    sequential_s: f64,
    /// Fleet engine, library materialized per board (no sharing).
    unshared_s: f64,
    /// Fleet engine, shared library world.
    shared_s: f64,
    /// Shared run with `validate: false` — `shared_s` minus the
    /// validation gate, isolating its cost from `catch_unwind`'s.
    validate_off_s: f64,
    /// The validation gate's wall clock inside the shared run.
    validation_s: f64,
    /// One-time shared-world build inside the shared run (already included
    /// in `shared_s` — reported separately to show the amortization).
    base_build_s: f64,
    library_polygons: usize,
    workers: usize,
    steals: u64,
    steal_attempts: u64,
    stolen_jobs: u64,
    busy_s: f64,
}

impl FleetRow {
    fn boards_per_sec(&self, secs: f64) -> f64 {
        self.boards as f64 / secs.max(1e-12)
    }
}

/// Times one fleet three ways — per-board sequential, fleet without
/// library sharing, fleet with it — asserting bit-identical outcomes
/// across all three (achieved lengths and pattern counts per trace).
fn run_fleet_case(name: &str, make: impl Fn() -> FleetCase, reps: usize) -> FleetRow {
    // Fleet rows pin the engine like `batched_config` (serial per-unit
    // driver; the fleet scheduler owns the fan-out).
    let extend = batched_config();

    // Reference: sequential per-board matching on materialized twins.
    let fingerprint = |reports: &[Vec<meander_core::GroupReport>]| -> Vec<u64> {
        reports
            .iter()
            .flatten()
            .flat_map(|g| {
                g.traces
                    .iter()
                    .map(|t| t.achieved.to_bits() ^ (t.patterns as u64) << 1)
            })
            .collect()
    };
    let (sequential_s, want) = median_secs(reps, || {
        let fleet = make();
        let t0 = Instant::now();
        let reports: Vec<Vec<meander_core::GroupReport>> = fleet
            .boards
            .iter()
            .map(|lb| {
                let mut board = lb.to_board();
                match_all_groups(&mut board, &extend)
            })
            .collect();
        (t0.elapsed().as_secs_f64(), fingerprint(&reports))
    });

    let fleet_run = |share: bool, validate: bool| {
        let fleet = make();
        let mut set = BoardSet::new(fleet.boards);
        let t0 = Instant::now();
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: extend.clone(),
                workers: None,
                share_library: share,
                validate,
                ..Default::default()
            },
        );
        let secs = t0.elapsed().as_secs_f64();
        assert!(report.all_routed(), "{name}: bench fleets are valid");
        let got = fingerprint(&report.reports);
        (secs, (report, got))
    };
    let (unshared_s, (_, got_unshared)) = median_secs(reps, || fleet_run(false, true));
    assert_eq!(
        want, got_unshared,
        "{name}: unshared fleet must be bit-identical to sequential"
    );
    let (shared_s, (shared_report, got_shared)) = median_secs(reps, || fleet_run(true, true));
    assert_eq!(
        want, got_shared,
        "{name}: shared fleet must be bit-identical to sequential"
    );
    // Validation off: same routing, no gate — isolates the scan's cost
    // (still bit-identical; these fleets are valid by construction).
    let (validate_off_s, (_, got_novalidate)) = median_secs(reps, || fleet_run(true, false));
    assert_eq!(
        want, got_novalidate,
        "{name}: validation must not change routed output"
    );

    let s = shared_report.stats;
    let row = FleetRow {
        name: name.to_string(),
        boards: s.boards,
        jobs: s.jobs,
        units: s.units,
        sequential_s,
        unshared_s,
        shared_s,
        validate_off_s,
        validation_s: s.validation_wall.as_secs_f64(),
        base_build_s: s.base_build.as_secs_f64(),
        library_polygons: s.library_polygons,
        workers: s.scheduler.workers,
        steals: s.scheduler.steals,
        steal_attempts: s.scheduler.steal_attempts,
        stolen_jobs: s.scheduler.stolen_jobs,
        busy_s: s.scheduler.total_busy().as_secs_f64(),
    };
    println!(
        "{:<18} sequential {:>8.4}s  unshared {:>8.4}s  shared {:>8.4}s  (x{:.2} sharing, x{:.2} vs sequential)  {:.2} boards/s shared, base build {:>8.5}s ({} lib polys), {} workers, {} steals",
        row.name,
        row.sequential_s,
        row.unshared_s,
        row.shared_s,
        row.unshared_s / row.shared_s.max(1e-12),
        row.sequential_s / row.shared_s.max(1e-12),
        row.boards_per_sec(row.shared_s),
        row.base_build_s,
        row.library_polygons,
        row.workers,
        row.steals,
    );
    row
}

struct CacheInvalRow {
    /// Library obstacle index moved (corridor-major: the top corridor's
    /// vias, so only the boards routing that corridor are damaged).
    edited_index: usize,
    /// Entries in the cache when the edit landed.
    entries: usize,
    /// Entries whose recorded touches intersected the damage — evicted.
    invalidated: u64,
    /// Entries outside the damage — moved under the new Merkle root.
    rekeyed: u64,
}

impl CacheInvalRow {
    fn invalidated_pct(&self) -> f64 {
        if self.entries == 0 {
            return 0.0;
        }
        100.0 * self.invalidated as f64 / self.entries as f64
    }
}

struct CacheRow {
    name: String,
    boards: usize,
    dup_rate: f64,
    jobs: usize,
    /// No cache attached — the from-scratch reference and denominator.
    uncached_s: f64,
    /// Fresh cache: every distinct (board, group) routes once and inserts.
    cold_s: f64,
    /// Same cache, fresh copy of the fleet: the serving regime.
    warm_s: f64,
    cold_hits: u64,
    cold_misses: u64,
    warm_hits: u64,
    warm_misses: u64,
    /// Cache occupancy after the warm pass (before the invalidation run).
    entries: usize,
    bytes: usize,
    invalidation: Option<CacheInvalRow>,
}

impl CacheRow {
    fn boards_per_sec(&self, secs: f64) -> f64 {
        self.boards as f64 / secs.max(1e-12)
    }

    fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            return 0.0;
        }
        self.warm_hits as f64 / total as f64
    }
}

/// Times the duplicate-heavy fleet three ways — uncached, cold cache
/// (populating), warm cache (serving a fresh copy of the same content) —
/// asserting all three routings bit-identical, then (full mode) lands one
/// library via move through a [`FleetSession`] and reads the invalidation
/// split off the cache counters.
fn run_cache_case(
    name: &str,
    make: impl Fn() -> FleetCase,
    dup_rate: f64,
    invalidate_index: Option<usize>,
) -> CacheRow {
    let extend = batched_config();
    let plain_cfg = FleetConfig {
        extend: extend.clone(),
        workers: None,
        share_library: true,
        ..Default::default()
    };
    let fingerprint = |reports: &[Vec<meander_core::GroupReport>]| -> Vec<u64> {
        reports
            .iter()
            .flatten()
            .flat_map(|g| {
                g.traces
                    .iter()
                    .map(|t| t.achieved.to_bits() ^ (t.patterns as u64) << 1)
            })
            .collect()
    };

    let fleet = make();
    let mut plain = BoardSet::new(fleet.boards.clone());
    let t0 = Instant::now();
    let plain_report = route_fleet(&mut plain, &plain_cfg);
    let uncached_s = t0.elapsed().as_secs_f64();
    assert!(plain_report.all_routed(), "{name}: bench fleets are valid");
    let want = fingerprint(&plain_report.reports);

    let cache = Arc::new(ResultCache::default());
    let cached_cfg = FleetConfig {
        extend: extend.clone(),
        workers: None,
        share_library: true,
        cache: Some(Arc::clone(&cache)),
        ..Default::default()
    };
    let mut cold = BoardSet::new(fleet.boards.clone());
    let t0 = Instant::now();
    let cold_report = route_fleet(&mut cold, &cached_cfg);
    let cold_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        want,
        fingerprint(&cold_report.reports),
        "{name}: cache-on must be bit-identical to cache-off"
    );

    let mut warm = BoardSet::new(fleet.boards.clone());
    let t0 = Instant::now();
    let warm_report = route_fleet(&mut warm, &cached_cfg);
    let warm_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        want,
        fingerprint(&warm_report.reports),
        "{name}: the warm pass must replay the routing exactly"
    );
    for (a, b) in cold.boards().iter().zip(warm.boards()) {
        for (id, t) in a.board().traces() {
            assert_eq!(
                t.centerline(),
                b.board().trace(id).expect("same traces").centerline(),
                "{name}: warm geometry must equal cold bit for bit"
            );
        }
    }
    assert!(
        warm_report.stats.cache_hits >= 1,
        "{name}: a duplicate-heavy second pass must hit the cache"
    );
    let entries = cache.len();
    let bytes = cache.bytes();

    let invalidation = invalidate_index.map(|index| {
        let mut session = FleetSession::new(BoardSet::new(fleet.boards.clone()), &cached_cfg);
        assert!(session.report().all_routed(), "{name}: session init routes");
        let entries = cache.len();
        let before = cache.stats();
        let _ = session.apply_edit(Edit::MoveObstacle {
            scope: EditScope::Library(0),
            index,
            by: Vector::new(1.5, 1.0),
        });
        let report = session.reroute_dirty(&cached_cfg);
        assert!(report.all_routed(), "{name}: fleet stays routed post-edit");
        let after = cache.stats();
        let row = CacheInvalRow {
            edited_index: index,
            entries,
            invalidated: after.invalidated - before.invalidated,
            rekeyed: after.rekeyed - before.rekeyed,
        };
        assert_eq!(
            (row.invalidated + row.rekeyed) as usize,
            entries,
            "{name}: the root transition classifies every entry"
        );
        row
    });

    let row = CacheRow {
        name: name.to_string(),
        boards: fleet.boards.len(),
        dup_rate,
        jobs: warm_report.stats.jobs,
        uncached_s,
        cold_s,
        warm_s,
        cold_hits: cold_report.stats.cache_hits,
        cold_misses: cold_report.stats.cache_misses,
        warm_hits: warm_report.stats.cache_hits,
        warm_misses: warm_report.stats.cache_misses,
        entries,
        bytes,
        invalidation,
    };
    println!(
        "{:<18} uncached {:>8.4}s  cold {:>8.4}s  warm {:>8.4}s  ({:.1} / {:.1} / {:.1} boards/s)  warm hits {}/{} ({:.1}%)  {} entries, {:.1} KiB",
        row.name,
        row.uncached_s,
        row.cold_s,
        row.warm_s,
        row.boards_per_sec(row.uncached_s),
        row.boards_per_sec(row.cold_s),
        row.boards_per_sec(row.warm_s),
        row.warm_hits,
        row.jobs,
        100.0 * row.warm_hit_rate(),
        row.entries,
        row.bytes as f64 / 1024.0,
    );
    if let Some(i) = &row.invalidation {
        println!(
            "{:<18} library move @{}: {} invalidated + {} rekeyed of {} entries ({:.1}% invalidated)",
            row.name,
            i.edited_index,
            i.invalidated,
            i.rekeyed,
            i.entries,
            i.invalidated_pct(),
        );
    }
    row
}

struct SessionRow {
    name: String,
    boards: usize,
    units: usize,
    /// Plain `route_fleet` of the same fleet — the from-scratch server
    /// and the denominator of the tracking-overhead ratio.
    plain_s: f64,
    /// `FleetSession::new` — the same route with touched-cell recording.
    init_s: f64,
    cycles: usize,
    edits_total: usize,
    /// Mean wall clock of one `reroute_dirty` (one cycle's edits).
    reroute_mean_s: f64,
    edits_per_sec: f64,
    /// What a from-scratch server manages: one full route per edit cycle.
    edits_per_sec_scratch: f64,
    units_dirty_total: usize,
    units_skipped_total: usize,
    cells_dirty_total: u64,
}

impl SessionRow {
    fn tracking_overhead_pct(&self) -> f64 {
        (self.init_s / self.plain_s.max(1e-12) - 1.0) * 100.0
    }

    fn speedup_vs_scratch(&self) -> f64 {
        self.edits_per_sec / self.edits_per_sec_scratch.max(1e-12)
    }

    fn skip_rate_pct(&self) -> f64 {
        let considered = self.units_dirty_total + self.units_skipped_total;
        if considered == 0 {
            return 0.0;
        }
        100.0 * self.units_skipped_total as f64 / considered as f64
    }
}

/// Serves `cycles` batches of edits through a [`FleetSession`], timing
/// each incremental re-route against the from-scratch full route, and
/// asserts the final served state is bit-identical to from-scratch
/// routing of the edited fleet.
fn run_session_case(
    name: &str,
    make: impl Fn() -> FleetCase,
    cycles: usize,
    edits_for: impl Fn(&FleetCase, usize) -> Vec<Edit>,
) -> SessionRow {
    let config = FleetConfig {
        extend: batched_config(),
        workers: None,
        share_library: true,
        ..Default::default()
    };
    let fingerprint = |reports: &[Vec<meander_core::GroupReport>]| -> Vec<u64> {
        reports
            .iter()
            .flatten()
            .flat_map(|g| {
                g.traces
                    .iter()
                    .map(|t| t.achieved.to_bits() ^ (t.patterns as u64) << 1)
            })
            .collect()
    };

    // From-scratch baseline: plain route, no touched-cell recording.
    let case = make();
    let t0 = Instant::now();
    let mut plain_set = BoardSet::new(case.boards.clone());
    let plain_report = route_fleet(&mut plain_set, &config);
    let plain_s = t0.elapsed().as_secs_f64();
    assert!(plain_report.all_routed(), "{name}: bench fleets are valid");

    // Session init: the same route, recording each unit's touched cells.
    let t0 = Instant::now();
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &config);
    let init_s = t0.elapsed().as_secs_f64();
    let init_report = session.report();
    assert!(init_report.all_routed(), "{name}: session init routes all");
    let units = init_report.stats.units;

    let mut reroute_total = 0.0f64;
    let mut edits_total = 0usize;
    let (mut dirty, mut skipped, mut cells) = (0usize, 0usize, 0u64);
    for cycle in 0..cycles {
        let edits = edits_for(&case, cycle);
        edits_total += edits.len();
        for e in edits {
            let _ = session.apply_edit(e);
        }
        let t0 = Instant::now();
        let report = session.reroute_dirty(&config);
        reroute_total += t0.elapsed().as_secs_f64();
        assert!(report.all_routed(), "{name}: serving fleet stays routed");
        dirty += report.stats.units_dirty;
        skipped += report.stats.units_skipped;
        cells = cells.saturating_add(report.stats.cells_dirty);
    }

    // The whole point: the served state equals from-scratch, bit for bit.
    let mut reference = BoardSet::new(session.pristine_boards());
    let want = route_fleet(&mut reference, &config);
    assert_eq!(
        fingerprint(&want.reports),
        fingerprint(&session.report().reports),
        "{name}: incremental re-route must equal from-scratch routing"
    );

    let reroute_mean_s = reroute_total / cycles.max(1) as f64;
    let edits_per_cycle = edits_total as f64 / cycles.max(1) as f64;
    let row = SessionRow {
        name: name.to_string(),
        boards: case.boards.len(),
        units,
        plain_s,
        init_s,
        cycles,
        edits_total,
        reroute_mean_s,
        edits_per_sec: edits_total as f64 / reroute_total.max(1e-12),
        edits_per_sec_scratch: edits_per_cycle / plain_s.max(1e-12),
        units_dirty_total: dirty,
        units_skipped_total: skipped,
        cells_dirty_total: cells,
    };
    println!(
        "{:<18} full route {:>8.4}s  recorded init {:>8.4}s ({:+.2}% tracking)  reroute {:>8.5}s/cycle  \
         {:>9.1} edits/s vs {:>7.2} from-scratch (x{:.1})  skip {:.1}% ({} dirty / {} skipped units)",
        row.name,
        row.plain_s,
        row.init_s,
        row.tracking_overhead_pct(),
        row.reroute_mean_s,
        row.edits_per_sec,
        row.edits_per_sec_scratch,
        row.speedup_vs_scratch(),
        row.skip_rate_pct(),
        row.units_dirty_total,
        row.units_skipped_total,
    );
    row
}

/// Index-nearest percentile of a sorted latency vector.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The speculative warm-up economics of the sched row.
struct WarmupEconRow {
    case: String,
    distinct: usize,
    warmed: usize,
    warmup_s: f64,
    /// Hit rate of a cold route against a fresh, unwarmed cache — the
    /// intra-fleet dup hits the engine finds on its own.
    cold_hit_rate_unwarmed: f64,
    /// Hit rate of the same route against the pre-warmed cache.
    cold_hit_rate_warmed: f64,
}

impl WarmupEconRow {
    fn hit_rate_delta(&self) -> f64 {
        self.cold_hit_rate_warmed - self.cold_hit_rate_unwarmed
    }
}

struct SchedRow {
    scheduler_workers: usize,
    serve_boards: usize,
    batch_boards: usize,
    /// Interactive re-routes timed per phase (unloaded and loaded).
    reroutes: usize,
    unloaded_p50_s: f64,
    unloaded_p99_s: f64,
    loaded_p50_s: f64,
    loaded_p99_s: f64,
    /// Loaded re-routes that actually overlapped the in-flight batch
    /// fleet (0 would mean the batch finished before the phase started —
    /// an honest miss that voids the loaded numbers).
    loaded_overlapped: usize,
    /// Wall clock of the concurrent batch fleet, submission to report.
    batch_s: f64,
    packets_interactive: u64,
    packets_batch: u64,
    packets_speculative: u64,
    preemptions: u64,
    parks: u64,
    unparks: u64,
    warmup: WarmupEconRow,
}

impl SchedRow {
    fn loaded_over_unloaded_p99(&self) -> f64 {
        self.loaded_p99_s / self.unloaded_p99_s.max(1e-12)
    }
}

/// The mixed-tier serving scenario on **one shared scheduler**: an
/// interactive [`FleetSession`] measures re-route latency twice — on an
/// idle scheduler, then with a batch fleet in flight on the same worker
/// pool and a speculative cache warm-up queued behind both — and the
/// warm-up's hit-rate lift is measured against an unwarmed cold route.
/// Every routing is asserted bit-identical to its sequential reference;
/// the bucket counters come off [`Scheduler::counters`] deltas.
fn run_sched_case(smoke: bool) -> SchedRow {
    let shared = Arc::new(Scheduler::new(1));
    let sched_cfg = || FleetConfig {
        extend: batched_config(),
        workers: None,
        share_library: true,
        sched: Some(Arc::clone(&shared)),
        ..Default::default()
    };
    let serial_cfg = FleetConfig {
        extend: batched_config(),
        workers: None,
        share_library: true,
        ..Default::default()
    };
    let fingerprint = |reports: &[Vec<meander_core::GroupReport>]| -> Vec<u64> {
        reports
            .iter()
            .flatten()
            .flat_map(|g| {
                g.traces
                    .iter()
                    .map(|t| t.achieved.to_bits() ^ (t.patterns as u64) << 1)
            })
            .collect()
    };

    let serve_fleet = if smoke {
        fleet_boards_small(3, 7, 11)
    } else {
        fleet_boards(16, 7, 11)
    };
    let batch_fleet = if smoke {
        fleet_boards_small(4, 21, 42)
    } else {
        fleet_boards(1000, 21, 42)
    };
    let (warm_name, warm_fleet) = if smoke {
        ("dup:small:4", dup_fleet_boards_small(4, 0.5, 19))
    } else {
        ("dup:1000@0.9", dup_fleet_boards(1000, 0.9, 33))
    };
    let reroutes_per_phase = if smoke { 4 } else { 100 };
    let serve_boards = serve_fleet.boards.len();
    let batch_boards = batch_fleet.boards.len();

    // The batch reference is routed sequentially up front (no scheduler)
    // so the loaded phase's batch output can be bit-compared.
    let mut batch_ref = BoardSet::new(batch_fleet.boards.clone());
    let batch_want = fingerprint(&route_fleet(&mut batch_ref, &serial_cfg).reports);

    let cfg = sched_cfg();
    let mut session = FleetSession::new(BoardSet::new(serve_fleet.boards.clone()), &cfg);
    assert!(session.report().all_routed(), "sched: serve fleet routes");
    let counters_start = shared.counters();

    // Obstacle 0 of board `k % n` oscillates +v / -v on alternating
    // visits, so a long edit stream never drifts geometry off the board:
    // every second visit returns the obstacle home.
    let edit_for = |k: usize| {
        let board = k % serve_boards;
        let sign = if (k / serve_boards).is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        Edit::MoveObstacle {
            scope: EditScope::Board(board),
            index: 0,
            by: Vector::new(sign * 1.5, -sign),
        }
    };
    let reroute_once = |session: &mut FleetSession, k: usize| -> f64 {
        let _ = session.apply_edit(edit_for(k));
        let t0 = Instant::now();
        let report = session.reroute_dirty(&cfg);
        let secs = t0.elapsed().as_secs_f64();
        assert!(report.all_routed(), "sched: serving fleet stays routed");
        secs
    };

    // Phase 1: interactive latency on an otherwise idle scheduler.
    let mut unloaded: Vec<f64> = (0..reroutes_per_phase)
        .map(|k| reroute_once(&mut session, k))
        .collect();

    // Phase 2: the same edits with a batch fleet in flight on the same
    // worker and a speculative warm-up queued behind both tiers.
    let batch_in_flight = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let batch_cfg = sched_cfg();
    let batch_flag = Arc::clone(&batch_in_flight);
    let batch_boards_owned = batch_fleet.boards;
    let batch_thread = std::thread::spawn(move || {
        let mut set = BoardSet::new(batch_boards_owned);
        let t0 = Instant::now();
        let report = route_fleet(&mut set, &batch_cfg);
        let secs = t0.elapsed().as_secs_f64();
        batch_flag.store(false, std::sync::atomic::Ordering::Release);
        (secs, report)
    });
    let warm_cache = Arc::new(ResultCache::default());
    let warm_cfg = sched_cfg();
    let warm_cache_remote = Arc::clone(&warm_cache);
    let warm_boards = warm_fleet.boards.clone();
    let warm_thread = std::thread::spawn(move || {
        warm_fleet_cache(&BoardSet::new(warm_boards), &warm_cfg, &warm_cache_remote)
    });
    // Give the batch fleet a head start so the loaded phase measures
    // what it claims to.
    std::thread::sleep(std::time::Duration::from_millis(10));
    let mut loaded: Vec<f64> = Vec::with_capacity(reroutes_per_phase);
    let mut loaded_overlapped = 0usize;
    for k in reroutes_per_phase..2 * reroutes_per_phase {
        loaded.push(reroute_once(&mut session, k));
        if batch_in_flight.load(std::sync::atomic::Ordering::Acquire) {
            loaded_overlapped += 1;
        }
    }
    let (batch_s, batch_report) = batch_thread.join().expect("batch thread");
    let warm = warm_thread.join().expect("warm thread");
    assert!(batch_report.all_routed(), "sched: batch fleet routes");
    assert_eq!(
        batch_want,
        fingerprint(&batch_report.reports),
        "sched: batch output under a contended shared scheduler must be \
         bit-identical to sequential"
    );
    assert_eq!(warm.failed, 0, "sched: clean warm-up never fails a group");
    assert_eq!(warm.skipped, 0, "sched: nothing cancelled the warm-up");
    assert_eq!(
        warm.already_cached + warm.warmed,
        warm.distinct,
        "sched: the warm-up covers every distinct key"
    );

    // The served session must still equal from-scratch routing of its
    // edited fleet after both phases.
    let mut reference = BoardSet::new(session.pristine_boards());
    let want = route_fleet(&mut reference, &serial_cfg);
    assert_eq!(
        fingerprint(&want.reports),
        fingerprint(&session.report().reports),
        "sched: interactive serving must equal from-scratch routing"
    );

    let counters = shared.counters().delta_since(&counters_start);

    // Warm-up economics: the same fleet content routed cold against a
    // fresh cache (the engine's own intra-fleet dup hits) vs against the
    // pre-warmed cache — the delta is what speculative warm-up buys a
    // cold start.
    let fresh = Arc::new(ResultCache::default());
    let unwarmed_cfg = FleetConfig {
        cache: Some(Arc::clone(&fresh)),
        ..serial_cfg.clone()
    };
    let mut unwarmed_set = BoardSet::new(warm_fleet.boards.clone());
    let unwarmed = route_fleet(&mut unwarmed_set, &unwarmed_cfg);
    let warmed_cfg = FleetConfig {
        cache: Some(Arc::clone(&warm_cache)),
        ..serial_cfg.clone()
    };
    let mut warmed_set = BoardSet::new(warm_fleet.boards.clone());
    let warmed = route_fleet(&mut warmed_set, &warmed_cfg);
    assert_eq!(
        fingerprint(&unwarmed.reports),
        fingerprint(&warmed.reports),
        "sched: warmed serving must replay the unwarmed routing exactly"
    );
    let hit_rate = |stats: &meander_fleet::FleetStats| -> f64 {
        let total = stats.cache_hits + stats.cache_misses;
        if total == 0 {
            return 0.0;
        }
        stats.cache_hits as f64 / total as f64
    };
    let warmup = WarmupEconRow {
        case: warm_name.to_string(),
        distinct: warm.distinct,
        warmed: warm.warmed,
        warmup_s: warm.elapsed.as_secs_f64(),
        cold_hit_rate_unwarmed: hit_rate(&unwarmed.stats),
        cold_hit_rate_warmed: hit_rate(&warmed.stats),
    };

    unloaded.sort_by(f64::total_cmp);
    loaded.sort_by(f64::total_cmp);
    let row = SchedRow {
        scheduler_workers: shared.workers(),
        serve_boards,
        batch_boards,
        reroutes: reroutes_per_phase,
        unloaded_p50_s: percentile(&unloaded, 0.50),
        unloaded_p99_s: percentile(&unloaded, 0.99),
        loaded_p50_s: percentile(&loaded, 0.50),
        loaded_p99_s: percentile(&loaded, 0.99),
        loaded_overlapped,
        batch_s,
        packets_interactive: counters.packets[Tier::Interactive.index()],
        packets_batch: counters.packets[Tier::Batch.index()],
        packets_speculative: counters.packets[Tier::Speculative.index()],
        preemptions: counters.preemptions,
        parks: counters.parks,
        unparks: counters.unparks,
        warmup,
    };
    println!(
        "interactive ({} boards, {} reroutes/phase): unloaded p50 {:>8.5}s p99 {:>8.5}s  \
         loaded p50 {:>8.5}s p99 {:>8.5}s (x{:.2} p99, {} of {} overlapped the batch)",
        row.serve_boards,
        row.reroutes,
        row.unloaded_p50_s,
        row.unloaded_p99_s,
        row.loaded_p50_s,
        row.loaded_p99_s,
        row.loaded_over_unloaded_p99(),
        row.loaded_overlapped,
        row.reroutes,
    );
    println!(
        "batch ({} boards) {:>8.4}s under interactive preemption  packets I/B/S {}/{}/{}  \
         preemptions {}  parks {}  unparks {}",
        row.batch_boards,
        row.batch_s,
        row.packets_interactive,
        row.packets_batch,
        row.packets_speculative,
        row.preemptions,
        row.parks,
        row.unparks,
    );
    println!(
        "warm-up {:<12} {} of {} distinct keys in {:>8.4}s  cold hit rate {:.3} unwarmed -> {:.3} warmed ({:+.3})",
        row.warmup.case,
        row.warmup.warmed,
        row.warmup.distinct,
        row.warmup.warmup_s,
        row.warmup.cold_hit_rate_unwarmed,
        row.warmup.cold_hit_rate_warmed,
        row.warmup.hit_rate_delta(),
    );
    row
}

struct CancelRow {
    fleet: String,
    boards: usize,
    /// Median latency from the token firing (on another thread, mid-run)
    /// to `route_fleet` returning — the pool-drain bound the cooperative
    /// checks promise (one unit's work per worker).
    drain_s: f64,
    /// Boards that reported `Cancelled` in the median rep (0 means the
    /// fleet finished before the token fired — an honest miss, not an
    /// error).
    cancelled_boards: usize,
    /// Units that ran in the median rep before the stop took hold.
    units_run: usize,
}

/// Fires a [`CancelToken`] from another thread `fire_after` into a fleet
/// route and measures how long the engine takes to drain afterwards.
fn run_cancel_case(
    name: &str,
    make: impl Fn() -> FleetCase,
    fire_after: std::time::Duration,
    reps: usize,
) -> CancelRow {
    let extend = batched_config();
    let mut samples: Vec<(f64, usize, usize)> = Vec::new();
    for _ in 0..reps.max(1) {
        let fleet = make();
        let boards = fleet.boards.len();
        let mut set = BoardSet::new(fleet.boards);
        let token = CancelToken::new();
        let remote = token.clone();
        let firing = std::thread::spawn(move || {
            std::thread::sleep(fire_after);
            let fired_at = Instant::now();
            remote.cancel();
            fired_at
        });
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: extend.clone(),
                cancel: Some(token),
                ..Default::default()
            },
        );
        let returned_at = Instant::now();
        let fired_at = firing.join().expect("cancel thread");
        let drain = returned_at.saturating_duration_since(fired_at);
        assert_eq!(report.outcomes.len(), boards);
        samples.push((
            drain.as_secs_f64(),
            report.stats.cancelled,
            report.stats.units_run,
        ));
    }
    samples.sort_by(|a, b| a.0.total_cmp(&b.0));
    let (drain_s, cancelled_boards, units_run) = samples[samples.len() / 2];
    let row = CancelRow {
        fleet: name.to_string(),
        boards: make().boards.len(),
        drain_s,
        cancelled_boards,
        units_run,
    };
    println!(
        "{:<18} cancel fired at {:?}: drained in {:>8.5}s  ({} of {} boards cancelled, {} units had run)",
        row.fleet, fire_after, row.drain_s, row.cancelled_boards, row.boards, row.units_run,
    );
    row
}

/// Injected-panic smoke (feature `fault`): one scripted panicking board
/// in a fleet must cost exactly that board, with the process alive and
/// the rest routed. Returns (wall seconds, failed boards, routed boards).
#[cfg(feature = "fault")]
fn run_fault_smoke() -> (f64, usize, usize) {
    // The injected panic would otherwise print a backtrace mid-bench.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected fault") {
            prev(info);
        }
    }));
    let fleet = fleet_boards_small(4, 21, 42);
    let boards = fleet.boards.len();
    let mut set = BoardSet::new(fleet.boards);
    let t0 = Instant::now();
    let report = route_fleet(
        &mut set,
        &FleetConfig {
            extend: batched_config(),
            fault: FaultPlan::new().panic_at_unit(0),
            ..Default::default()
        },
    );
    let secs = t0.elapsed().as_secs_f64();
    let _ = std::panic::take_hook();
    assert_eq!(report.stats.failed, 1, "exactly the injected board fails");
    assert_eq!(report.stats.routed, boards - 1, "everyone else routes");
    println!(
        "fault smoke: 1 injected panic -> {} failed, {} routed, pool alive ({:.4}s)",
        report.stats.failed, report.stats.routed, secs
    );
    (secs, report.stats.failed, report.stats.routed)
}

/// The injected-fault slice of a resilience row (feature `fault` only).
struct FaultedResilience {
    /// Wall seconds for the resilient route of the faulted fleet
    /// (first attempt + every retry the ladder ran).
    resilient_s: f64,
    /// Boards scripted with a transient first-attempt panic.
    faulted_boards: usize,
    routed: usize,
    degraded: usize,
    shed: usize,
    retries: u64,
    /// `(routed + degraded) / boards` — 1.0 means full recovery.
    recovered_rate: f64,
}

struct ResilienceRow {
    fleet: String,
    boards: usize,
    /// Bare `route_fleet` on the clean fleet.
    baseline_s: f64,
    /// `route_fleet_resilient` on the same clean fleet — the happy-path
    /// overhead of the policy layer (admission bookkeeping + planning
    /// scan; no retries run).
    resilient_clean_s: f64,
    faulted: Option<FaultedResilience>,
}

/// Times the resilience layer two ways: happy path (clean fleet, the
/// policy overhead must be noise) and — with `--features fault` — an
/// injected-fault fleet where every fourth board panics transiently on
/// its first attempt and must come back `Degraded` via the retry rung.
fn run_resilience_case(name: &str, make: impl Fn() -> FleetCase, reps: usize) -> ResilienceRow {
    let base_config = || FleetConfig {
        extend: batched_config(),
        ..Default::default()
    };
    let policy = RetryPolicy::default();

    let (baseline_s, boards) = median_secs(reps, || {
        let fleet = make();
        let mut set = BoardSet::new(fleet.boards);
        let t0 = Instant::now();
        let report = route_fleet(&mut set, &base_config());
        assert!(report.all_routed(), "{name}: bench fleets are valid");
        (t0.elapsed().as_secs_f64(), report.stats.boards)
    });
    let (resilient_clean_s, _) = median_secs(reps, || {
        let fleet = make();
        let mut set = BoardSet::new(fleet.boards);
        let t0 = Instant::now();
        let r = route_fleet_resilient(&mut set, &base_config(), &policy);
        assert_eq!(r.report.stats.retries, 0, "{name}: clean fleet retries");
        assert!(r.quarantine.is_empty());
        (t0.elapsed().as_secs_f64(), ())
    });

    #[cfg(feature = "fault")]
    let faulted = {
        // Transient panic at the first unit of every fourth board (25%),
        // attempt 0 only — the retry rung must recover all of them.
        let probe = make().boards;
        let mut plan = FaultPlan::new();
        let mut faulted_boards = 0usize;
        let mut unit_base = 0u64;
        for (b, lb) in probe.iter().enumerate() {
            if b % 4 == 0 {
                plan = plan.panic_at_unit_on_attempt(unit_base, 0);
                faulted_boards += 1;
            }
            unit_base += plan_board_units(lb.board())
                .iter()
                .map(|(_, units)| units.len() as u64)
                .sum::<u64>();
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
        let (resilient_s, stats) = median_secs(reps, || {
            let fleet = make();
            let mut set = BoardSet::new(fleet.boards);
            let config = FleetConfig {
                fault: plan.clone(),
                ..base_config()
            };
            let t0 = Instant::now();
            let r = route_fleet_resilient(&mut set, &config, &policy);
            (t0.elapsed().as_secs_f64(), r.report.stats)
        });
        let _ = std::panic::take_hook();
        let recovered_rate = (stats.routed + stats.degraded) as f64 / stats.boards.max(1) as f64;
        assert_eq!(
            stats.degraded, faulted_boards,
            "{name}: every faulted board recovers on the retry rung"
        );
        assert_eq!(stats.shed, 0, "{name}: nothing shed");
        Some(FaultedResilience {
            resilient_s,
            faulted_boards,
            routed: stats.routed,
            degraded: stats.degraded,
            shed: stats.shed,
            retries: stats.retries,
            recovered_rate,
        })
    };
    #[cfg(not(feature = "fault"))]
    let faulted: Option<FaultedResilience> = None;

    let row = ResilienceRow {
        fleet: name.to_string(),
        boards,
        baseline_s,
        resilient_clean_s,
        faulted,
    };
    println!(
        "{:<18} baseline {:>8.4}s  resilient(clean) {:>8.4}s  ({:+.2}% happy-path overhead)",
        row.fleet,
        row.baseline_s,
        row.resilient_clean_s,
        (row.resilient_clean_s / row.baseline_s.max(1e-12) - 1.0) * 100.0,
    );
    if let Some(f) = &row.faulted {
        println!(
            "{:<18} faulted({} of {} boards) {:>8.4}s  routed {} degraded {} shed {} retries {}  recovered {:.0}%",
            row.fleet,
            f.faulted_boards,
            row.boards,
            f.resilient_s,
            f.routed,
            f.degraded,
            f.shed,
            f.retries,
            f.recovered_rate * 100.0,
        );
    }
    row
}

/// Pulls a per-case seconds field out of one array section of a prior
/// `BENCH_PR*.json` (hand-rolled scan; no serde offline). Returns
/// `(case_name, seconds)` for every row of `section` carrying `key`.
fn parse_recorded(path: &str, section: &str, key: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let needle = format!("\"{section}\"");
    let keyq = format!("\"{key}\"");
    let mut out = Vec::new();
    let mut in_section = false;
    for line in text.lines() {
        if line.contains(&needle) {
            in_section = true;
            continue;
        }
        if in_section && line.trim_start().starts_with(']') {
            break;
        }
        if !in_section {
            continue;
        }
        let field = |key: &str| -> Option<&str> {
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let rest = rest.trim_start_matches([':', ' ', '"']);
            let end = rest.find([',', '"', '}']).unwrap_or(rest.len());
            Some(&rest[..end])
        };
        if let (Some(name), Some(secs)) = (field("\"case\""), field(&keyq)) {
            if let Ok(v) = secs.parse::<f64>() {
                out.push((name.to_string(), v));
            }
        }
    }
    out
}

/// Geometric mean; `None` when nothing was measured (e.g. sections skipped
/// under `--smoke`) so absent data is never reported as a speedup of 1.
fn gmean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// `x{value}` for a measured geomean, `n/a` otherwise (console form).
fn fmt_gmean(g: Option<f64>, digits: usize) -> String {
    match g {
        Some(v) => format!("x{v:.digits$}"),
        None => "n/a".to_string(),
    }
}

/// JSON form: the number, or `null` when unmeasured.
fn json_gmean(g: Option<f64>) -> String {
    match g {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = Some(arg);
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        if smoke {
            "BENCH_SMOKE.json".to_string()
        } else {
            "BENCH_PR10.json".to_string()
        }
    });

    // The one honesty note for every fleet/session/cache/sched row below:
    // this container has one CPU.
    println!(
        "(1-CPU container: one worker, steal counters ≈ 0, shrink side pair inactive — \
         shared-vs-unshared deltas isolate library-index amortization, and preemption counts \
         come from packet-boundary tier switches, not parallel contention; re-measure \
         scheduler scaling on multicore)\n"
    );
    println!("== group matching (naive vs incremental vs batched vs rtree vs parallel) ==");
    let mut rows: Vec<CaseRow> = Vec::new();
    if smoke {
        rows.push(run_case("table1:5", || table1_case(5).board));
    } else {
        for case_no in 1..=5usize {
            rows.push(run_case(&format!("table1:{case_no}"), || {
                table1_case(case_no).board
            }));
        }
        rows.push(run_case("stress:small", || {
            stress_board(12, 30, 200, 11).board
        }));
        rows.push(run_case("stress:large", || {
            stress_board(16, 40, 300, 12).board
        }));
        rows.push(run_case("stress:mixed", || {
            stress_mixed_board(12, 30, 200, 11).board
        }));
    }

    let mut extend_rows: Vec<ExtendRow> = Vec::new();
    if !smoke {
        println!("\n== single-trace extension (table2 upper-bound hunts) ==");
        for case_no in 1..=6usize {
            extend_rows.push(run_extend_case(&format!("table2:{case_no}"), case_no));
        }
        // Side-by-side vs the recorded prior baseline, when present (the
        // acceptance gate for this PR compares against these wall clocks).
        let pr9 = parse_recorded("BENCH_PR9.json", "single_trace_extension", "batched_s");
        if !pr9.is_empty() {
            println!("\n-- delta vs BENCH_PR9.json (recorded batched_s) --");
            let mut ratios = Vec::new();
            for r in &extend_rows {
                if let Some((_, old)) = pr9.iter().find(|(n, _)| *n == r.name) {
                    ratios.push(old / r.batched_s.max(1e-12));
                    println!(
                        "{:<18} pr9 recorded {:>8.4}s  batched now {:>8.4}s  (x{:.2})",
                        r.name,
                        old,
                        r.batched_s,
                        old / r.batched_s.max(1e-12)
                    );
                }
            }
            if let Some(g) = gmean(&ratios) {
                println!("{:<18} geomean vs recorded PR9: x{g:.2}", "");
            }
        }
    }

    let mut resolve_rows: Vec<ResolveRow> = Vec::new();
    if !smoke {
        println!("\n== DP session resolve (prefix reuse after a windowed splice) ==");
        for m in [64usize, 160] {
            resolve_rows.push(run_dp_resolve_case(m));
        }
    }

    println!("\n== DRC scan on matched boards (brute vs indexed vs batched) ==");
    let mut drc_rows: Vec<DrcRow> = Vec::new();
    let drc_boards: Vec<(&str, Board)> = if smoke {
        vec![("table1:5", table1_case(5).board)]
    } else {
        vec![
            ("table1:4", table1_case(4).board),
            ("stress:large", stress_board(16, 40, 300, 12).board),
            ("stress:mixed", stress_mixed_board(12, 30, 200, 11).board),
        ]
    };
    for (name, mut board) in drc_boards {
        let _ = match_board_group(&mut board, 0, &parallel_config());
        drc_rows.push(run_drc_case(name, &board));
    }
    if !smoke {
        let pr9 = parse_recorded("BENCH_PR9.json", "drc_scan", "rtree_s");
        if !pr9.is_empty() {
            println!("\n-- delta vs BENCH_PR9.json (recorded rtree_s) --");
            for r in &drc_rows {
                if let Some((_, old)) = pr9.iter().find(|(n, _)| *n == r.name) {
                    println!(
                        "{:<18} pr9 recorded {:>8.4}s  rtree now {:>8.4}s  (x{:.2})",
                        r.name,
                        old,
                        r.rtree_s,
                        old / r.rtree_s.max(1e-12)
                    );
                }
            }
        }
        let pr9m = parse_recorded("BENCH_PR9.json", "group_matching", "rtree_s");
        if !pr9m.is_empty() {
            println!("\n-- matching delta vs BENCH_PR9.json (recorded rtree_s) --");
            for r in &rows {
                if let Some((_, old)) = pr9m.iter().find(|(n, _)| *n == r.name) {
                    println!(
                        "{:<18} pr9 recorded {:>8.4}s  rtree now {:>8.4}s  (x{:.2})",
                        r.name,
                        old,
                        r.rtree_s,
                        old / r.rtree_s.max(1e-12)
                    );
                }
            }
        }
    }

    println!("\n== fleet batch routing (sequential vs unshared vs shared library) ==");
    let mut fleet_rows: Vec<FleetRow> = Vec::new();
    if smoke {
        fleet_rows.push(run_fleet_case(
            "fleet:small:4",
            || fleet_boards_small(4, 21, 42),
            1,
        ));
    } else {
        fleet_rows.push(run_fleet_case("fleet:16", || fleet_boards(16, 21, 42), 3));
        fleet_rows.push(run_fleet_case("fleet:32", || fleet_boards(32, 5, 9), 3));
    }

    // Fleet drift against the recorded PR 9 rows (the per-unit packet
    // model replaces per-group jobs on the same routing kernels, so
    // shared_s should hold).
    if !smoke {
        let pr9f = parse_recorded("BENCH_PR9.json", "fleet", "shared_s");
        if !pr9f.is_empty() {
            println!("\n-- fleet drift vs BENCH_PR9.json (recorded shared_s) --");
            for r in &fleet_rows {
                if let Some((_, old)) = pr9f.iter().find(|(n, _)| *n == r.name) {
                    let overhead = r.shared_s / old.max(1e-12) - 1.0;
                    println!(
                        "{:<18} pr9 recorded {:>8.4}s  shared now {:>8.4}s  ({:+.2}% drift, validation {:>8.5}s of it)",
                        r.name,
                        old,
                        r.shared_s,
                        overhead * 100.0,
                        r.validation_s,
                    );
                }
            }
        }
    }

    println!("\n== session: incremental re-routing with damage tracking ==");
    let session_row = if smoke {
        // Small fleet, a real generated edit stream (structural edits and
        // library-scope damage included) — keeps the serving path honest
        // in CI without the 1000-board wall clock.
        run_session_case(
            "session:small:4",
            || fleet_boards_small(4, 21, 42),
            2,
            |case, cycle| edit_stream(case, 42 + cycle as u64, 2),
        )
    } else {
        // The headline: 1000 boards, 10 board-local obstacle moves per
        // cycle = 1% churn, measured against the from-scratch server.
        run_session_case(
            "session:1000@1%",
            || fleet_boards(1000, 21, 42),
            4,
            |case, cycle| {
                let n = case.boards.len();
                (0..10)
                    .map(|e| {
                        let k = cycle * 10 + e;
                        Edit::MoveObstacle {
                            scope: EditScope::Board((k * 97 + 13) % n),
                            index: k * 31 + 7,
                            by: Vector::new(
                                1.5 + 0.25 * (k % 5) as f64,
                                -1.0 + 0.5 * (k % 3) as f64,
                            ),
                        }
                    })
                    .collect()
            },
        )
    };

    println!("\n== result cache: content-addressed serving (uncached vs cold vs warm) ==");
    let cache_row = if smoke {
        // The CI smoke: a duplicate-heavy 4-board fleet routed twice; the
        // warm pass must hit at least once (asserted inside the case).
        run_cache_case(
            "cache:small:4",
            || dup_fleet_boards_small(4, 0.5, 19),
            0.5,
            None,
        )
    } else {
        // The headline: 1000 boards at dup rate 0.9 (~100 distinct), then
        // one library via move in the top corridor — corridor-major
        // library layout puts corridor 5's vias at indices 20..24, and
        // only 6-trace boards route that corridor, so the invalidation
        // must stay a small slice of the entries.
        run_cache_case(
            "cache:1000@0.9",
            || dup_fleet_boards(1000, 0.9, 33),
            0.9,
            Some(23),
        )
    };
    if !smoke {
        // The PR's acceptance gates, held in-bench so a regression fails
        // the run rather than shipping a quietly slower JSON.
        assert!(
            cache_row.warm_hit_rate() >= 0.9,
            "warm-pass hit rate {:.3} must be >= 0.9",
            cache_row.warm_hit_rate()
        );
        assert!(
            cache_row.uncached_s / cache_row.warm_s.max(1e-12) >= 3.0,
            "warm serving must be >= 3x uncached ({:.4}s vs {:.4}s)",
            cache_row.warm_s,
            cache_row.uncached_s
        );
        let inval = cache_row
            .invalidation
            .as_ref()
            .expect("the full bench measures invalidation precision");
        assert!(
            inval.invalidated_pct() < 20.0,
            "one library edit invalidated {:.1}% of entries (must stay < 20%)",
            inval.invalidated_pct()
        );
    }

    println!("\n== sched: bucketed serving tiers (interactive vs batch vs speculative) ==");
    let sched_row = run_sched_case(smoke);
    if !smoke {
        // The PR's serving-tier gates: a batch fleet in flight must not
        // more than double the interactive tail, and speculative warm-up
        // must lift the cold-start hit rate.
        assert!(
            sched_row.loaded_overlapped > 0,
            "the loaded phase must overlap the batch fleet to mean anything"
        );
        assert!(
            sched_row.loaded_p99_s <= 2.0 * sched_row.unloaded_p99_s,
            "loaded interactive p99 {:.5}s exceeds 2x unloaded {:.5}s",
            sched_row.loaded_p99_s,
            sched_row.unloaded_p99_s
        );
        assert!(
            sched_row.warmup.hit_rate_delta() > 0.0,
            "speculative warm-up must lift the cold-start hit rate \
             ({:.3} unwarmed vs {:.3} warmed)",
            sched_row.warmup.cold_hit_rate_unwarmed,
            sched_row.warmup.cold_hit_rate_warmed
        );
        assert!(
            sched_row.packets_interactive > 0 && sched_row.packets_speculative > 0,
            "both the interactive and speculative buckets must have run"
        );
    }

    println!("\n== resilience: retry ladder happy path + injected-fault recovery ==");
    let resilience_row = if smoke {
        run_resilience_case("fleet:small:8", || fleet_boards_small(8, 21, 42), 1)
    } else {
        run_resilience_case("fleet:16", || fleet_boards(16, 21, 42), 1)
    };

    println!("\n== hardening: cancellation drain + fault smoke ==");
    let cancel_row = if smoke {
        run_cancel_case(
            "fleet:small:4",
            || fleet_boards_small(4, 21, 42),
            std::time::Duration::from_millis(1),
            3,
        )
    } else {
        run_cancel_case(
            "fleet:32",
            || fleet_boards(32, 5, 9),
            std::time::Duration::from_millis(5),
            5,
        )
    };
    #[cfg(feature = "fault")]
    let fault_smoke = Some(run_fault_smoke());
    #[cfg(not(feature = "fault"))]
    let fault_smoke: Option<(f64, usize, usize)> = None;

    // Headline: geometric-mean speedups.
    let match_speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.naive_s / r.incremental_s.max(1e-12))
        .collect();
    let match_batch: Vec<f64> = rows
        .iter()
        .map(|r| r.incremental_s / r.batched_s.max(1e-12))
        .collect();
    let match_rtree: Vec<f64> = rows
        .iter()
        .map(|r| r.batched_s / r.rtree_s.max(1e-12))
        .collect();
    let drc_speedups: Vec<f64> = drc_rows
        .iter()
        .map(|r| r.brute_s / r.indexed_s.max(1e-12))
        .collect();
    let drc_batch: Vec<f64> = drc_rows
        .iter()
        .map(|r| r.indexed_s / r.batched_s.max(1e-12))
        .collect();
    let drc_rtree: Vec<f64> = drc_rows
        .iter()
        .map(|r| r.batched_s / r.rtree_s.max(1e-12))
        .collect();
    let ext_vs_pr1: Vec<f64> = extend_rows
        .iter()
        .map(|r| r.pr1path_s / r.incremental_s.max(1e-12))
        .collect();
    let ext_vs_naive: Vec<f64> = extend_rows
        .iter()
        .map(|r| r.naive_s / r.incremental_s.max(1e-12))
        .collect();
    let ext_batch: Vec<f64> = extend_rows
        .iter()
        .map(|r| r.incremental_s / r.batched_s.max(1e-12))
        .collect();
    let fleet_sharing: Vec<f64> = fleet_rows
        .iter()
        .map(|r| r.unshared_s / r.shared_s.max(1e-12))
        .collect();
    let fleet_vs_sequential: Vec<f64> = fleet_rows
        .iter()
        .map(|r| r.sequential_s / r.shared_s.max(1e-12))
        .collect();
    println!(
        "fleet geomean: {} sharing speedup, {} vs per-board sequential",
        fmt_gmean(gmean(&fleet_sharing), 2),
        fmt_gmean(gmean(&fleet_vs_sequential), 2)
    );
    println!(
        "\ngeomean speedup: matching {} ({} batch, {} rtree), extension {} vs pr1path ({} vs naive, {} batch), drc {} ({} batch, {} rtree)",
        fmt_gmean(gmean(&match_speedups), 1),
        fmt_gmean(gmean(&match_batch), 2),
        fmt_gmean(gmean(&match_rtree), 2),
        fmt_gmean(gmean(&ext_vs_pr1), 2),
        fmt_gmean(gmean(&ext_vs_naive), 2),
        fmt_gmean(gmean(&ext_batch), 2),
        fmt_gmean(gmean(&drc_speedups), 1),
        fmt_gmean(gmean(&drc_batch), 2),
        fmt_gmean(gmean(&drc_rtree), 2)
    );

    // ---- JSON emission (hand-rolled; no serde offline). ------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"meander-bench-baseline/10\",");
    let _ = writeln!(j, "  \"pr\": 10,");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(
        j,
        "  \"geomean_fleet_sharing_speedup\": {},",
        json_gmean(gmean(&fleet_sharing))
    );
    let _ = writeln!(
        j,
        "  \"geomean_fleet_vs_sequential\": {},",
        json_gmean(gmean(&fleet_vs_sequential))
    );
    let _ = writeln!(
        j,
        "  \"geomean_matching_speedup\": {},",
        json_gmean(gmean(&match_speedups))
    );
    let _ = writeln!(
        j,
        "  \"geomean_matching_batch_speedup\": {},",
        json_gmean(gmean(&match_batch))
    );
    let _ = writeln!(
        j,
        "  \"geomean_matching_rtree_speedup\": {},",
        json_gmean(gmean(&match_rtree))
    );
    let _ = writeln!(
        j,
        "  \"geomean_extension_speedup_vs_pr1path\": {},",
        json_gmean(gmean(&ext_vs_pr1))
    );
    let _ = writeln!(
        j,
        "  \"geomean_extension_speedup_vs_naive\": {},",
        json_gmean(gmean(&ext_vs_naive))
    );
    let _ = writeln!(
        j,
        "  \"geomean_extension_batch_speedup\": {},",
        json_gmean(gmean(&ext_batch))
    );
    let _ = writeln!(
        j,
        "  \"geomean_drc_speedup\": {},",
        json_gmean(gmean(&drc_speedups))
    );
    let _ = writeln!(
        j,
        "  \"geomean_drc_batch_speedup\": {},",
        json_gmean(gmean(&drc_batch))
    );
    let _ = writeln!(
        j,
        "  \"geomean_drc_rtree_speedup\": {},",
        json_gmean(gmean(&drc_rtree))
    );
    let _ = writeln!(j, "  \"group_matching\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"case\": \"{}\", \"naive_s\": {:.6}, \"incremental_s\": {:.6}, \"batched_s\": {:.6}, \"rtree_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup_incremental\": {:.3}, \"speedup_batch\": {:.3}, \"speedup_rtree\": {:.3}, \"speedup_parallel\": {:.3}, \"max_err_pct\": {:.4}, \"patterns\": {}}}{}",
            r.name,
            r.naive_s,
            r.incremental_s,
            r.batched_s,
            r.rtree_s,
            r.parallel_s,
            r.naive_s / r.incremental_s.max(1e-12),
            r.incremental_s / r.batched_s.max(1e-12),
            r.batched_s / r.rtree_s.max(1e-12),
            r.naive_s / r.parallel_s.max(1e-12),
            r.max_err_pct,
            r.patterns,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"single_trace_extension\": [");
    for (i, r) in extend_rows.iter().enumerate() {
        let s = &r.stats;
        let b = &r.batch;
        let pops = r.iterations.max(1) as f64;
        let _ = writeln!(
            j,
            "    {{\"case\": \"{}\", \"naive_s\": {:.6}, \"pr1path_s\": {:.6}, \"incremental_s\": {:.6}, \"batched_s\": {:.6}, \"speedup_vs_naive\": {:.3}, \"speedup_vs_pr1path\": {:.3}, \"speedup_batch\": {:.3}, \"iterations\": {}, \"patterns\": {}, \"hq_requested\": {}, \"hq_executed\": {}, \"hq_pruned\": {}, \"hq_memo_hits\": {}, \"hq_skip_rate\": {:.4}, \"dp_points_per_pop\": {:.1}, \"batch_calls\": {}, \"batch_candidates_per_call\": {:.2}, \"batch_wasted_lanes\": {}}}{}",
            r.name,
            r.naive_s,
            r.pr1path_s,
            r.incremental_s,
            r.batched_s,
            r.naive_s / r.incremental_s.max(1e-12),
            r.pr1path_s / r.incremental_s.max(1e-12),
            r.incremental_s / r.batched_s.max(1e-12),
            r.iterations,
            r.patterns,
            s.hq_requested,
            s.hq_executed,
            s.hq_pruned,
            s.hq_memo_hits,
            s.skip_rate(),
            s.points_evaluated as f64 / pops,
            b.calls,
            b.candidates_per_call(),
            b.wasted_lanes(),
            if i + 1 < extend_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"dp_resolve\": [");
    for (i, r) in resolve_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"m\": {}, \"scratch_s\": {:.9}, \"resolve_s\": {:.9}, \"speedup\": {:.3}, \"points_per_resolve\": {:.1}, \"memo_hit_rate\": {:.4}}}{}",
            r.m,
            r.scratch_s,
            r.resolve_s,
            r.scratch_s / r.resolve_s.max(1e-12),
            r.points_per_resolve,
            r.memo_hit_rate,
            if i + 1 < resolve_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"fleet\": [");
    for (i, r) in fleet_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"case\": \"{}\", \"boards\": {}, \"jobs\": {}, \"units\": {}, \"sequential_s\": {:.6}, \"unshared_s\": {:.6}, \"shared_s\": {:.6}, \"validate_off_s\": {:.6}, \"validation_s\": {:.6}, \"base_build_s\": {:.6}, \"library_polygons\": {}, \"boards_per_sec_shared\": {:.3}, \"boards_per_sec_unshared\": {:.3}, \"speedup_sharing\": {:.3}, \"speedup_vs_sequential\": {:.3}, \"workers\": {}, \"steals\": {}, \"steal_attempts\": {}, \"stolen_jobs\": {}, \"busy_s\": {:.6}}}{}",
            r.name,
            r.boards,
            r.jobs,
            r.units,
            r.sequential_s,
            r.unshared_s,
            r.shared_s,
            r.validate_off_s,
            r.validation_s,
            r.base_build_s,
            r.library_polygons,
            r.boards_per_sec(r.shared_s),
            r.boards_per_sec(r.unshared_s),
            r.unshared_s / r.shared_s.max(1e-12),
            r.sequential_s / r.shared_s.max(1e-12),
            r.workers,
            r.steals,
            r.steal_attempts,
            r.stolen_jobs,
            r.busy_s,
            if i + 1 < fleet_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"session\": {{");
    let _ = writeln!(
        j,
        "    \"fleet\": \"{}\", \"boards\": {}, \"units\": {}, \"full_route_s\": {:.6}, \"recorded_init_s\": {:.6}, \"tracking_overhead_pct\": {:.3},",
        session_row.name,
        session_row.boards,
        session_row.units,
        session_row.plain_s,
        session_row.init_s,
        session_row.tracking_overhead_pct(),
    );
    let _ = writeln!(
        j,
        "    \"cycles\": {}, \"edits_total\": {}, \"reroute_mean_s\": {:.6}, \"edits_per_sec\": {:.3}, \"edits_per_sec_scratch\": {:.3}, \"speedup_vs_scratch\": {:.3},",
        session_row.cycles,
        session_row.edits_total,
        session_row.reroute_mean_s,
        session_row.edits_per_sec,
        session_row.edits_per_sec_scratch,
        session_row.speedup_vs_scratch(),
    );
    let _ = writeln!(
        j,
        "    \"units_dirty\": {}, \"units_skipped\": {}, \"skip_rate_pct\": {:.3}, \"cells_dirty\": {}",
        session_row.units_dirty_total,
        session_row.units_skipped_total,
        session_row.skip_rate_pct(),
        session_row.cells_dirty_total,
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"cache\": {{");
    let _ = writeln!(
        j,
        "    \"case\": \"{}\", \"boards\": {}, \"dup_rate\": {:.2}, \"jobs\": {},",
        cache_row.name, cache_row.boards, cache_row.dup_rate, cache_row.jobs,
    );
    let _ = writeln!(
        j,
        "    \"uncached_s\": {:.6}, \"cold_s\": {:.6}, \"warm_s\": {:.6},",
        cache_row.uncached_s, cache_row.cold_s, cache_row.warm_s,
    );
    let _ = writeln!(
        j,
        "    \"boards_per_sec_uncached\": {:.3}, \"boards_per_sec_cold\": {:.3}, \"boards_per_sec_warm\": {:.3},",
        cache_row.boards_per_sec(cache_row.uncached_s),
        cache_row.boards_per_sec(cache_row.cold_s),
        cache_row.boards_per_sec(cache_row.warm_s),
    );
    let _ = writeln!(
        j,
        "    \"speedup_warm_vs_uncached\": {:.3}, \"speedup_cold_vs_uncached\": {:.3},",
        cache_row.uncached_s / cache_row.warm_s.max(1e-12),
        cache_row.uncached_s / cache_row.cold_s.max(1e-12),
    );
    let _ = writeln!(
        j,
        "    \"cold_hits\": {}, \"cold_misses\": {}, \"warm_hits\": {}, \"warm_misses\": {}, \"warm_hit_rate\": {:.4},",
        cache_row.cold_hits,
        cache_row.cold_misses,
        cache_row.warm_hits,
        cache_row.warm_misses,
        cache_row.warm_hit_rate(),
    );
    let _ = writeln!(
        j,
        "    \"entries\": {}, \"bytes\": {},",
        cache_row.entries, cache_row.bytes,
    );
    match &cache_row.invalidation {
        Some(i) => {
            let _ = writeln!(
                j,
                "    \"invalidation\": {{\"edited_index\": {}, \"entries\": {}, \"invalidated\": {}, \"rekeyed\": {}, \"invalidated_pct\": {:.3}}}",
                i.edited_index,
                i.entries,
                i.invalidated,
                i.rekeyed,
                i.invalidated_pct(),
            );
        }
        None => {
            let _ = writeln!(j, "    \"invalidation\": null");
        }
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"sched\": {{");
    let _ = writeln!(
        j,
        "    \"scheduler_workers\": {}, \"serve_boards\": {}, \"batch_boards\": {}, \"reroutes\": {},",
        sched_row.scheduler_workers,
        sched_row.serve_boards,
        sched_row.batch_boards,
        sched_row.reroutes,
    );
    let _ = writeln!(
        j,
        "    \"interactive_unloaded_p50_s\": {:.6}, \"interactive_unloaded_p99_s\": {:.6}, \"interactive_loaded_p50_s\": {:.6}, \"interactive_loaded_p99_s\": {:.6},",
        sched_row.unloaded_p50_s,
        sched_row.unloaded_p99_s,
        sched_row.loaded_p50_s,
        sched_row.loaded_p99_s,
    );
    let _ = writeln!(
        j,
        "    \"loaded_over_unloaded_p99\": {:.3}, \"loaded_overlapped\": {}, \"batch_s\": {:.6},",
        sched_row.loaded_over_unloaded_p99(),
        sched_row.loaded_overlapped,
        sched_row.batch_s,
    );
    let _ = writeln!(
        j,
        "    \"packets_interactive\": {}, \"packets_batch\": {}, \"packets_speculative\": {}, \"preemptions\": {}, \"parks\": {}, \"unparks\": {},",
        sched_row.packets_interactive,
        sched_row.packets_batch,
        sched_row.packets_speculative,
        sched_row.preemptions,
        sched_row.parks,
        sched_row.unparks,
    );
    let _ = writeln!(
        j,
        "    \"warmup\": {{\"case\": \"{}\", \"distinct\": {}, \"warmed\": {}, \"warmup_s\": {:.6}, \"cold_hit_rate_unwarmed\": {:.4}, \"cold_hit_rate_warmed\": {:.4}, \"hit_rate_delta\": {:.4}}}",
        sched_row.warmup.case,
        sched_row.warmup.distinct,
        sched_row.warmup.warmed,
        sched_row.warmup.warmup_s,
        sched_row.warmup.cold_hit_rate_unwarmed,
        sched_row.warmup.cold_hit_rate_warmed,
        sched_row.warmup.hit_rate_delta(),
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"drc_scan\": [");
    for (i, r) in drc_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"case\": \"{}\", \"brute_s\": {:.6}, \"indexed_s\": {:.6}, \"batched_s\": {:.6}, \"rtree_s\": {:.6}, \"speedup\": {:.3}, \"speedup_batch\": {:.3}, \"speedup_rtree\": {:.3}, \"segments\": {}, \"violations\": {}, \"batch_calls\": {}, \"batch_candidates_per_call\": {:.2}, \"batch_wasted_lanes\": {}}}{}",
            r.name,
            r.brute_s,
            r.indexed_s,
            r.batched_s,
            r.rtree_s,
            r.brute_s / r.indexed_s.max(1e-12),
            r.indexed_s / r.batched_s.max(1e-12),
            r.batched_s / r.rtree_s.max(1e-12),
            r.segments,
            r.violations,
            r.batch.calls,
            r.batch.candidates_per_call(),
            r.batch.wasted_lanes(),
            if i + 1 < drc_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"resilience\": {{");
    let _ = writeln!(
        j,
        "    \"fleet\": \"{}\", \"boards\": {}, \"baseline_s\": {:.6}, \"resilient_clean_s\": {:.6}, \"happy_path_overhead_pct\": {:.3},",
        resilience_row.fleet,
        resilience_row.boards,
        resilience_row.baseline_s,
        resilience_row.resilient_clean_s,
        (resilience_row.resilient_clean_s / resilience_row.baseline_s.max(1e-12) - 1.0) * 100.0,
    );
    match &resilience_row.faulted {
        Some(f) => {
            let _ = writeln!(
                j,
                "    \"faulted\": {{\"resilient_s\": {:.6}, \"faulted_boards\": {}, \"routed\": {}, \"degraded\": {}, \"shed\": {}, \"retries\": {}, \"recovered_rate\": {:.4}}}",
                f.resilient_s,
                f.faulted_boards,
                f.routed,
                f.degraded,
                f.shed,
                f.retries,
                f.recovered_rate,
            );
        }
        None => {
            let _ = writeln!(j, "    \"faulted\": null");
        }
    }
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"hardening\": {{");
    let _ = writeln!(
        j,
        "    \"cancel\": {{\"fleet\": \"{}\", \"boards\": {}, \"drain_s\": {:.6}, \"cancelled_boards\": {}, \"units_run\": {}}},",
        cancel_row.fleet,
        cancel_row.boards,
        cancel_row.drain_s,
        cancel_row.cancelled_boards,
        cancel_row.units_run,
    );
    match fault_smoke {
        Some((secs, failed, routed)) => {
            let _ = writeln!(
                j,
                "    \"fault_smoke\": {{\"wall_s\": {secs:.6}, \"failed_boards\": {failed}, \"routed_boards\": {routed}}}"
            );
        }
        None => {
            let _ = writeln!(j, "    \"fault_smoke\": null");
        }
    }
    let _ = writeln!(j, "  }}");
    let _ = writeln!(j, "}}");

    std::fs::write(&out_path, &j).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
