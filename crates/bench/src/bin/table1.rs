//! Regenerates the paper's Table I: length-matching performance compared
//! with the AiDT-like baseline on the five synthesized cases.
//!
//! ```text
//! cargo run --release -p meander-bench --bin table1
//! ```

use meander_bench::table1::{header, run_table1_case};

fn main() {
    println!("Table I — length-matching performance (AiDT-like baseline vs ours)");
    println!("{}", header());
    for case_no in 1..=5 {
        let row = run_table1_case(case_no);
        println!("{row}");
    }
    println!();
    println!("paper reference (max% / avg%):");
    println!("  case 1: initial 37.38/19.02  allegro 33.52/14.23  ours 3.02/1.30");
    println!("  case 2: initial 35.99/19.41  allegro 28.06/11.04  ours 3.93/1.39");
    println!("  case 3: initial 35.91/20.06  allegro 20.91/8.66   ours 3.51/1.37");
    println!("  case 4: initial 30.99/17.22  allegro 22.25/9.85   ours 5.46/1.83");
    println!("  case 5: initial 26.55/15.18  allegro 10.21/5.14   ours 10.3/3.32");
}
