//! Table I driver: overall length-matching performance vs the AiDT-like
//! baseline.

use meander_core::baseline::match_group_aidt;
use meander_core::{match_board_group, ExtendConfig};
use meander_layout::gen::table1_case;
use meander_layout::MatchGroup;

/// One row of Table I (all error values in percent, runtime in seconds).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Case number (1–5).
    pub case_no: usize,
    /// Group target length.
    pub ltarget: f64,
    /// `d_gap`.
    pub dgap: f64,
    /// Group size (pairs count once).
    pub group_size: usize,
    /// "single-ended" / "differential".
    pub trace_type: String,
    /// "dense" / "sparse".
    pub spacing: String,
    /// Initial max error %.
    pub init_max: f64,
    /// Baseline (AiDT-like) max error %.
    pub base_max: f64,
    /// Our max error %.
    pub ours_max: f64,
    /// Initial avg error %.
    pub init_avg: f64,
    /// Baseline avg error %.
    pub base_avg: f64,
    /// Our avg error %.
    pub ours_avg: f64,
    /// Baseline runtime (s).
    pub base_runtime: f64,
    /// Our runtime (s).
    pub ours_runtime: f64,
}

/// Runs one Table I case through both tuners and collects the row.
pub fn run_table1_case(case_no: usize) -> Table1Row {
    let config = ExtendConfig::default();

    // Initial errors from the untouched board.
    let case = table1_case(case_no);
    let group = &case.board.groups()[0];
    let lengths = case.board.group_lengths(group);
    let init_max = MatchGroup::max_error(case.ltarget, &lengths) * 100.0;
    let init_avg = MatchGroup::avg_error(case.ltarget, &lengths) * 100.0;

    // Baseline on a fresh board.
    let mut base_case = table1_case(case_no);
    let base = match_group_aidt(&mut base_case.board, 0, &config);

    // Ours on a fresh board.
    let mut ours_case = table1_case(case_no);
    let ours = match_board_group(&mut ours_case.board, 0, &config);

    Table1Row {
        case_no,
        ltarget: case.ltarget,
        dgap: case.dgap,
        group_size: case.group_size,
        trace_type: case.trace_type.to_string(),
        spacing: case.spacing.to_string(),
        init_max,
        base_max: base.max_error() * 100.0,
        ours_max: ours.max_error() * 100.0,
        init_avg,
        base_avg: base.avg_error() * 100.0,
        ours_avg: ours.avg_error() * 100.0,
        base_runtime: base.runtime.as_secs_f64(),
        ours_runtime: ours.runtime.as_secs_f64(),
    }
}

/// Formats the header of the printed table.
pub fn header() -> String {
    format!(
        "{:<4} {:>8} {:>5} {:>4} {:<13} {:<7} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>9} {:>9}",
        "case", "ltarget", "dgap", "n", "type", "spacing",
        "ini.max%", "base.max", "ours.max",
        "ini.avg%", "base.avg", "ours.avg",
        "base.t(s)", "ours.t(s)"
    )
}

impl std::fmt::Display for Table1Row {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<4} {:>8.2} {:>5.1} {:>4} {:<13} {:<7} | {:>8.2} {:>8.2} {:>8.2} | {:>8.2} {:>8.2} {:>8.2} | {:>9.3} {:>9.3}",
            self.case_no,
            self.ltarget,
            self.dgap,
            self.group_size,
            self.trace_type,
            self.spacing,
            self.init_max,
            self.base_max,
            self.ours_max,
            self.init_avg,
            self.base_avg,
            self.ours_avg,
            self.base_runtime,
            self.ours_runtime
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_shape_matches_paper() {
        let row = run_table1_case(1);
        // Paper shape: ours ≪ baseline ≪ initial on max error.
        assert!(row.ours_max < row.base_max, "{row}");
        assert!(row.base_max < row.init_max, "{row}");
        assert!(row.ours_avg < row.base_avg, "{row}");
        // Ours lands in the paper's few-percent regime.
        assert!(row.ours_max < 10.0, "{row}");
    }

    #[test]
    fn differential_case_runs() {
        let row = run_table1_case(5);
        assert_eq!(row.trace_type, "differential");
        assert!(row.ours_max < row.init_max);
    }
}
