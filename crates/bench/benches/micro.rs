//! Micro-benchmarks of the kernels behind the runtime columns, plus the
//! ablation benches DESIGN.md calls out:
//!
//! * `dp_kernel` — segment DP vs discretization size (uniform cap vs
//!   per-position upper-bound profile),
//! * `dp_resolve` — windowed invalidation + resolve vs a from-scratch
//!   solve on a memoized [`DpSession`]. The closure here is a cheap array
//!   scan, so this isolates the session's own bookkeeping cost (memo
//!   upkeep roughly cancels the row reuse); the `dp_resolve` section of
//!   the `baseline` binary runs the same comparison against real
//!   URA-shrink queries, where the reuse wins 3–7×,
//! * `ura_shrink` — one max-height query vs obstacle count (allocating and
//!   scratch-reusing variants),
//! * `batch_distance` — `distance_sq_to_segment_batch` vs the scalar
//!   `distance_to_segment` loop at candidate counts {4, 16, 64, 256},
//! * `batch_profile` — batched vs scalar `build_ub_profile` sweep,
//! * `dtw` — node matching vs node count,
//! * `simplex` — assignment LP vs grid size,
//! * `priority_ablation` — connected-pattern priority on/off (Fig. 5),
//! * `requeue_ablation` — meander-on-meander on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meander_core::baseline::FixedTrackOptions;
use meander_core::context::{ShrinkContext, WorldContext};
use meander_core::dp::{extend_segment_dp, DpInput, DpSession, HeightBounds, UbProfile};
use meander_core::extend::ExtendInput;
use meander_core::shrink::{
    build_ub_profile, build_ub_profile_batched, max_pattern_height, max_pattern_height_scratch,
    ShrinkScratch,
};
use meander_core::{extend_trace, ExtendConfig};
use meander_geom::batch::{distance_sq_to_segment_batch, SegBatch};
use meander_geom::{Frame, Point, Polygon, Polyline, Segment};
use meander_msdtw::dtw_match;
use meander_region::{solve_lp_for_bench, LpOutcome};

/// A bumpy per-position height field: realistic position dependence so the
/// profile bounds have something to prune.
fn bumpy_field(m: usize) -> Vec<f64> {
    (0..=m)
        .map(|i| {
            let x = i as f64;
            let h = 6.0 + 5.0 * (x * 0.37).sin() + 3.0 * (x * 0.11).cos();
            if h < 2.0 {
                0.0
            } else {
                h
            }
        })
        .collect()
}

fn bench_dp_kernel(c: &mut Criterion) {
    let config = ExtendConfig::default();
    let mut group = c.benchmark_group("dp_kernel");
    for m in [32usize, 64, 128, 256] {
        let field = bumpy_field(m);
        let height = |lo: usize, hi: usize, _: i8| -> f64 {
            field[lo..=hi].iter().fold(f64::INFINITY, |a, &b| a.min(b))
        };
        let mk = |bounds| DpInput {
            m,
            ldisc: 1.0,
            gap_steps: 8,
            protect_steps: 4,
            min_width_steps: 8,
            max_width_steps: 48,
            height: &height,
            bounds,
            config: &config,
        };
        group.bench_with_input(BenchmarkId::new("uniform", m), &m, |b, _| {
            b.iter(|| extend_segment_dp(&mk(HeightBounds::Uniform(f64::INFINITY))))
        });
        let profile = UbProfile {
            cap: 14.0,
            left: [field.clone(), field.clone()],
            right: [field.clone(), field.clone()],
        };
        group.bench_with_input(BenchmarkId::new("profile", m), &m, |b, _| {
            b.iter(|| extend_segment_dp(&mk(HeightBounds::Profile(&profile))))
        });
    }
    group.finish();
}

fn bench_dp_resolve(c: &mut Criterion) {
    let config = ExtendConfig::default();
    let mut group = c.benchmark_group("dp_resolve");
    for m in [64usize, 160] {
        let field = std::cell::RefCell::new(bumpy_field(m));
        let height = |lo: usize, hi: usize, _: i8| -> f64 {
            let f = field.borrow();
            f[lo..=hi].iter().fold(f64::INFINITY, |a, &b| a.min(b))
        };
        let input = DpInput {
            m,
            ldisc: 1.0,
            gap_steps: 8,
            protect_steps: 4,
            min_width_steps: 8,
            max_width_steps: 48,
            height: &height,
            bounds: HeightBounds::Uniform(f64::INFINITY),
            config: &config,
        };
        // Splice window in the last quarter: the resolve reuses the prefix.
        let (a, b) = (m * 3 / 4, m * 3 / 4 + 8);
        group.bench_with_input(BenchmarkId::new("scratch", m), &m, |bch, _| {
            bch.iter(|| extend_segment_dp(&input))
        });
        group.bench_with_input(BenchmarkId::new("resolve", m), &m, |bch, _| {
            let mut session = DpSession::new(&input, true);
            let _ = session.solve(&input);
            bch.iter(|| {
                {
                    let mut f = field.borrow_mut();
                    for x in a..=b.min(m) {
                        f[x] = if f[x] == 0.0 { 4.0 } else { 0.0 };
                    }
                }
                session.invalidate_window(a, b);
                session.solve(&input)
            })
        });
    }
    group.finish();
}

fn bench_ura_shrink(c: &mut Criterion) {
    let mut group = c.benchmark_group("ura_shrink");
    for n_obstacles in [4usize, 16, 64, 256] {
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(200.0, 0.0));
        let frame = Frame::from_segment(&seg).unwrap();
        let obstacles: Vec<Polygon> = (0..n_obstacles)
            .map(|i| {
                let x = 10.0 + (i % 16) as f64 * 12.0;
                let y = 8.0 + (i / 16) as f64 * 12.0;
                Polygon::regular(Point::new(x, y), 1.5, 8, 0.0)
            })
            .collect();
        let world = WorldContext {
            area: vec![Polygon::rectangle(
                Point::new(-20.0, -80.0),
                Point::new(220.0, 80.0),
            )],
            obstacles,
            other_uras: vec![],
        };
        let ctx = ShrinkContext::build(&world, &frame, 200.0, 1);
        group.bench_with_input(
            BenchmarkId::new("alloc", n_obstacles),
            &n_obstacles,
            |b, _| b.iter(|| max_pattern_height(&ctx, 80.0, 110.0, 8.0, 60.0, 2.0)),
        );
        group.bench_with_input(
            BenchmarkId::new("scratch", n_obstacles),
            &n_obstacles,
            |b, _| {
                let mut scratch = ShrinkScratch::new();
                b.iter(|| {
                    max_pattern_height_scratch(&ctx, 80.0, 110.0, 8.0, 60.0, 2.0, &mut scratch)
                })
            },
        );
    }
    group.finish();
}

/// `distance_sq_to_segment_batch` vs the scalar `distance_to_segment`
/// candidate loop — the DRC scan's pair kernel shape.
fn bench_batch_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_distance");
    let probe = Segment::new(Point::new(0.0, 0.0), Point::new(40.0, 9.0));
    for n in [4usize, 16, 64, 256] {
        // Deterministic pseudo-random candidate cloud: short segments
        // scattered around the probe, the shape trace segments actually
        // have in a DRC window (few bbox overlaps with the probe).
        let mut batch = SegBatch::new();
        let mut segs = Vec::with_capacity(n);
        let mut state = 88172645463325252u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            let a = Point::new(rnd() * 120.0 - 40.0, rnd() * 120.0 - 40.0);
            let s = Segment::new(
                a,
                Point::new(a.x + rnd() * 12.0 - 6.0, a.y + rnd() * 12.0 - 6.0),
            );
            batch.push(&s);
            segs.push(s);
        }
        group.bench_with_input(BenchmarkId::new("scalar", n), &n, |b, _| {
            b.iter(|| {
                let mut best = f64::INFINITY;
                for s in &segs {
                    let d = probe.distance_to_segment(s);
                    if d < best {
                        best = d;
                    }
                }
                best
            })
        });
        let mut dsq = Vec::new();
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
            b.iter(|| {
                distance_sq_to_segment_batch(&probe, &batch, &mut dsq);
                let mut best = f64::INFINITY;
                for &d in &dsq {
                    if d < best {
                        best = d;
                    }
                }
                best.sqrt()
            })
        });
    }
    group.finish();
}

/// Batched vs scalar `build_ub_profile` sweep — the per-pop profile cost
/// the DP prune depends on.
fn bench_batch_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_profile");
    let seg_len = 200.0;
    let seg = Segment::new(Point::new(0.0, 0.0), Point::new(seg_len, 0.0));
    let frame = Frame::from_segment(&seg).unwrap();
    let obstacles: Vec<Polygon> = (0..64)
        .map(|i| {
            let x = 6.0 + (i % 16) as f64 * 12.0;
            let y = 9.0 + (i / 16) as f64 * 11.0;
            Polygon::regular(Point::new(x, y), 1.5, 8, 0.0)
        })
        .collect();
    let world = WorldContext {
        area: vec![Polygon::rectangle(
            Point::new(-20.0, -80.0),
            Point::new(seg_len + 20.0, 80.0),
        )],
        obstacles,
        other_uras: vec![],
    };
    let ctx_up = ShrinkContext::build(&world, &frame, seg_len, 1);
    let ctx_dn = ShrinkContext::build(&world, &frame, seg_len, -1);
    for m in [64usize, 160] {
        let ldisc = seg_len / m as f64;
        let (gap, h_init, h_min) = (8.0, 40.0, 2.0);
        let mut scratch = ShrinkScratch::new();
        group.bench_with_input(BenchmarkId::new("scalar", m), &m, |b, _| {
            b.iter(|| {
                build_ub_profile(&ctx_up, &ctx_dn, m, ldisc, gap, h_init, h_min, &mut scratch)
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", m), &m, |b, _| {
            b.iter(|| {
                build_ub_profile_batched(
                    &ctx_up,
                    &ctx_dn,
                    m,
                    ldisc,
                    gap,
                    h_init,
                    h_min,
                    &mut scratch,
                )
            })
        });
    }
    group.finish();
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    for n in [16usize, 64, 256] {
        let p: Vec<Point> = (0..n).map(|i| Point::new(i as f64, 3.0)).collect();
        let q: Vec<Point> = (0..n + 7)
            .map(|i| Point::new(i as f64 * 0.97, -3.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| dtw_match(&p, &q))
        });
    }
    group.finish();
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for size in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let out = solve_lp_for_bench(size);
                assert!(matches!(out, LpOutcome::Optimal { .. }));
                out
            })
        });
    }
    group.finish();
}

fn extend_input_fixture() -> (Polyline, Vec<Polygon>, meander_drc::DesignRules) {
    let trace = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0)]);
    let area = vec![Polygon::rectangle(
        Point::new(-20.0, -60.0),
        Point::new(220.0, 60.0),
    )];
    let rules = meander_drc::DesignRules {
        gap: 8.0,
        obstacle: 8.0,
        protect: 4.0,
        miter: 2.0,
        width: 4.0,
    };
    (trace, area, rules)
}

fn bench_ablations(c: &mut Criterion) {
    let (trace, area, rules) = extend_input_fixture();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    for (name, config) in [
        ("priority_on", ExtendConfig::default()),
        (
            "priority_off",
            ExtendConfig {
                connect_priority: false,
                ..Default::default()
            },
        ),
        (
            "requeue_off",
            ExtendConfig {
                requeue: false,
                ..Default::default()
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                extend_trace(
                    &ExtendInput {
                        trace: &trace,
                        target: 500.0,
                        rules: &rules,
                        area: &area,
                        obstacles: &[],
                    },
                    &config,
                )
            })
        });
    }
    // Report achieved lengths once so ablation quality is visible in logs.
    for (name, config) in [
        ("priority_on", ExtendConfig::default()),
        (
            "priority_off",
            ExtendConfig {
                connect_priority: false,
                ..Default::default()
            },
        ),
        (
            "requeue_off",
            ExtendConfig {
                requeue: false,
                ..Default::default()
            },
        ),
    ] {
        let out = extend_trace(
            &ExtendInput {
                trace: &trace,
                target: 500.0,
                rules: &rules,
                area: &area,
                obstacles: &[],
            },
            &config,
        );
        println!("ablation {name}: achieved {:.2} / 500", out.achieved);
    }
    let _ = FixedTrackOptions::default(); // keep baseline types exercised
    group.finish();
}

criterion_group!(
    benches,
    bench_dp_kernel,
    bench_dp_resolve,
    bench_ura_shrink,
    bench_batch_distance,
    bench_batch_profile,
    bench_dtw,
    bench_simplex,
    bench_ablations
);
criterion_main!(benches);
