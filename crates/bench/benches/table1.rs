//! Criterion bench for **Table I**: runtime of the full matching flow on
//! each case, for ours and the AiDT-like baseline (the table's two runtime
//! columns). The table rows themselves are printed once at startup so the
//! bench log doubles as the table regeneration record.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meander_bench::table1::{header, run_table1_case};
use meander_core::baseline::match_group_aidt;
use meander_core::{match_board_group, ExtendConfig};
use meander_layout::gen::table1_case;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once.
    println!("\nTable I — regenerated rows:");
    println!("{}", header());
    for case_no in 1..=5 {
        println!("{}", run_table1_case(case_no));
    }
    println!();

    let config = ExtendConfig::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for case_no in 1..=5usize {
        group.bench_with_input(BenchmarkId::new("ours", case_no), &case_no, |b, &n| {
            b.iter_batched(
                || table1_case(n),
                |mut case| match_board_group(&mut case.board, 0, &config),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("aidt_like", case_no), &case_no, |b, &n| {
            b.iter_batched(
                || table1_case(n),
                |mut case| match_group_aidt(&mut case.board, 0, &config),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
