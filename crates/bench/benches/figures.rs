//! Criterion bench for the **figure pipelines** (Figs. 14–16): the
//! end-to-end flows behind each display figure — case matching (14a),
//! any-angle matching (14b), and the MSDTW merge/restore cycle (16a/16b).

use criterion::{criterion_group, criterion_main, Criterion};
use meander_core::{match_board_group, ExtendConfig};
use meander_geom::Angle;
use meander_layout::gen::{any_angle_bus, decoupled_pair, table1_case};
use meander_layout::svg::{render_board, SvgStyle};
use meander_msdtw::{merge_pair, restore_pair, PairGeometry};

fn bench_figures(c: &mut Criterion) {
    let config = ExtendConfig::default();

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    // Fig. 14a: match + render the dense case.
    group.bench_function("fig14a_case1_match_and_render", |b| {
        b.iter_batched(
            || table1_case(1),
            |mut case| {
                let _ = match_board_group(&mut case.board, 0, &config);
                render_board(&case.board, &SvgStyle::default())
            },
            criterion::BatchSize::LargeInput,
        )
    });

    // Fig. 14b: the any-direction demo.
    group.bench_function("fig14b_any_angle_match", |b| {
        b.iter_batched(
            || any_angle_bus(4, Angle::from_degrees(17.0)),
            |mut board| match_board_group(&mut board, 0, &config),
            criterion::BatchSize::LargeInput,
        )
    });

    // Fig. 16: MSDTW merge + restore cycle on the decoupled pair.
    let case = decoupled_pair(false);
    let p = case.board.trace(case.p).expect("p").centerline().clone();
    let n = case.board.trace(case.n).expect("n").centerline().clone();
    group.bench_function("fig16_msdtw_merge_restore", |b| {
        b.iter(|| {
            let merged = merge_pair(&PairGeometry::new(&p, &n, case.sep0)).expect("merge");
            restore_pair(&merged.median, case.sep0)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
