//! Criterion bench for **Table II**: runtime of the maximum-extension hunt
//! with and without DP per case, with the regenerated rows printed once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use meander_bench::table2::{header, run_table2_case};
use meander_core::baseline::{extend_trace_fixed, FixedTrackOptions};
use meander_core::extend::ExtendInput;
use meander_core::{extend_trace, ExtendConfig};
use meander_layout::gen::table2_case;

fn bench_table2(c: &mut Criterion) {
    println!("\nTable II — regenerated rows:");
    println!("{}", header());
    for case_no in 1..=6 {
        println!("{}", run_table2_case(case_no));
    }
    println!();

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let config = ExtendConfig {
        max_iterations: 2000,
        ..ExtendConfig::default()
    };
    for case_no in [1usize, 6] {
        let case = table2_case(case_no);
        let trace = case.board.trace(case.trace).expect("trace").clone();
        let area = case
            .board
            .area(case.trace)
            .expect("area")
            .polygons()
            .to_vec();
        let obstacles: Vec<_> = case
            .board
            .obstacles()
            .iter()
            .map(|o| o.polygon().clone())
            .collect();
        let rules = *trace.rules();
        let target = trace.length() * 50.0;

        group.bench_with_input(BenchmarkId::new("with_dp", case_no), &case_no, |b, _| {
            b.iter(|| {
                extend_trace(
                    &ExtendInput {
                        trace: trace.centerline(),
                        target,
                        rules: &rules,
                        area: &area,
                        obstacles: &obstacles,
                    },
                    &config,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("without_dp", case_no), &case_no, |b, _| {
            b.iter(|| {
                extend_trace_fixed(
                    &ExtendInput {
                        trace: trace.centerline(),
                        target,
                        rules: &rules,
                        area: &area,
                        obstacles: &obstacles,
                    },
                    &config,
                    &FixedTrackOptions::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
