//! Resilience properties (feature `fault`): the recovery layer's outcome
//! vector — including which rung recovered a board and which boards were
//! shed — is a pure function of the input and the fault plan.
//!
//! The contract under test, from `resilience`'s module docs:
//!
//! * transient faults (panic on attempt 0 only) are recovered by the
//!   retry ladder as [`BoardOutcome::Degraded`], with geometry
//!   bit-identical to the sequential reference when the recovering rung
//!   keeps the knobs;
//! * the fleet-wide retry token bucket sheds starved retries as
//!   [`ShedReason::RetryTokens`], deterministically in input order;
//! * boards that panic on every rung are quarantined with a
//!   delta-debugged minimal repro that still crashes the probe;
//! * all of it is invariant across worker counts 1–4 and both sharing
//!   modes, and the process always survives.
//!
//! Run with `cargo test -p meander-fleet --features fault`.
#![cfg(feature = "fault")]

use meander_core::{match_all_groups, plan_board_units, ExtendConfig};
use meander_fleet::{
    route_fleet, route_fleet_resilient, AdmissionPolicy, BoardOutcome, BoardSet, DegradeStep,
    FaultPlan, FleetConfig, JobError, RetryPolicy, ShedReason,
};
use meander_layout::gen::fleet_boards_small;
use meander_layout::io::load_board;
use meander_layout::{Board, LibraryBoard};
use std::sync::Once;
use std::time::Duration;

/// Silences the default panic hook for *injected* panics only (same
/// helper as the chaos suite).
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
    });
}

fn serial_extend() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..Default::default()
    }
}

fn config(workers: usize, share: bool) -> FleetConfig {
    FleetConfig {
        extend: serial_extend(),
        workers: Some(workers),
        share_library: share,
        ..Default::default()
    }
}

/// Routes `lb`'s materialized twin sequentially — the bit-identity
/// reference for one fleet board.
fn sequential_twin(lb: &LibraryBoard) -> Board {
    let mut board = lb.to_board();
    let _ = match_all_groups(&mut board, &serial_extend());
    board
}

/// Bit-exact geometry comparison (see the chaos suite for why `to_bits`).
fn assert_geometry(label: &str, want: &Board, got: &Board) {
    for (id, t) in want.traces() {
        let g = got.trace(id).expect("trace");
        let wp = t.centerline().points();
        let gp = g.centerline().points();
        assert_eq!(wp.len(), gp.len(), "{label}: trace {id:?} vertex count");
        for (i, (a, b)) in wp.iter().zip(gp).enumerate() {
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits()),
                (b.x.to_bits(), b.y.to_bits()),
                "{label}: trace {id:?} vertex {i}"
            );
        }
    }
}

/// Global input-order index of `board`'s first unit, plus its unit count.
fn unit_span(boards: &[LibraryBoard], board: usize) -> (u64, u64) {
    let units_of = |lb: &LibraryBoard| -> u64 {
        plan_board_units(lb.board())
            .iter()
            .map(|(_, units)| units.len() as u64)
            .sum()
    };
    let base: u64 = boards[..board].iter().map(&units_of).sum();
    (base, units_of(&boards[board]))
}

fn entity_count(lb: &LibraryBoard) -> usize {
    meander_fleet::repro::entity_count(lb)
}

/// The acceptance scenario: a fleet where 25% of the boards (2 of 8) hit
/// a transient first-attempt panic recovers every board — the faulted
/// ones as `Degraded { step: Retry, attempts: 2 }` — with identical
/// outcome vectors for every worker count and sharing mode, recovered
/// geometry bit-identical to sequential, and zero process deaths.
#[test]
fn transient_panics_recover_on_the_retry_rung() {
    quiet_injected_panics();
    let fleet = fleet_boards_small(8, 13, 29);
    let twins: Vec<Board> = fleet.boards.iter().map(sequential_twin).collect();
    let faulted = [0usize, 4];
    let jobs = {
        let mut probe = BoardSet::new(fleet.boards.clone());
        route_fleet(&mut probe, &config(1, true)).stats.jobs as u64
    };
    // Transient panic at each faulted board's first unit, attempt 0 only,
    // plus bounded seeded pop jitter on every job to widen race windows.
    let mut plan = FaultPlan::new().jittered_delays(77, jobs, Duration::from_micros(300));
    for &b in &faulted {
        plan = plan.panic_at_unit_on_attempt(unit_span(&fleet.boards, b).0, 0);
    }

    let mut reference: Option<Vec<BoardOutcome>> = None;
    for share in [true, false] {
        for workers in 1..=4 {
            let label = format!("share={share} workers={workers}");
            let mut set = BoardSet::new(fleet.boards.clone());
            let resilient = route_fleet_resilient(
                &mut set,
                &FleetConfig {
                    fault: plan.clone(),
                    ..config(workers, share)
                },
                &RetryPolicy::default(),
            );
            let report = &resilient.report;
            // Outcome vector invariant across schedulings.
            match &reference {
                None => reference = Some(report.outcomes.clone()),
                Some(want) => assert_eq!(want, &report.outcomes, "{label}"),
            }
            // Everything recovered: 6 routed + 2 degraded ≥ the 75%
            // healthy share, no board lost.
            assert_eq!(report.stats.routed, 6, "{label}");
            assert_eq!(report.stats.degraded, 2, "{label}");
            assert_eq!(report.stats.retries, 2, "{label}");
            assert_eq!(report.stats.shed + report.stats.failed, 0, "{label}");
            assert!(resilient.quarantine.is_empty(), "{label}");
            for (b, outcome) in report.outcomes.iter().enumerate() {
                if faulted.contains(&b) {
                    assert!(
                        matches!(
                            outcome,
                            BoardOutcome::Degraded {
                                step: DegradeStep::Retry,
                                attempts: 2
                            }
                        ),
                        "{label} board {b}: {outcome:?}"
                    );
                    // The journal tells the story: failed once, retried clean.
                    let j = &resilient.journals[b];
                    assert_eq!(j.attempts.len(), 2, "{label} board {b}");
                    assert!(
                        matches!(j.attempts[0].outcome, BoardOutcome::Failed(_)),
                        "{label} board {b}"
                    );
                    assert_eq!(j.attempts[1].step, Some(DegradeStep::Retry));
                    assert!(j.attempts[1].outcome.is_routed());
                } else {
                    assert!(outcome.is_routed(), "{label} board {b}: {outcome:?}");
                    assert_eq!(resilient.journals[b].attempts.len(), 1);
                }
                // Retry-rung recovery keeps the knobs, so EVERY board —
                // including the recovered ones — is bit-identical to its
                // sequential twin.
                assert_geometry(
                    &format!("{label} board {b}"),
                    &twins[b],
                    set.boards()[b].board(),
                );
                assert!(!report.reports[b].is_empty(), "{label} board {b}");
            }
        }
    }
}

/// Token-bucket exhaustion: with one retry token and two failing boards,
/// the first (input order) recovers and the second is shed as
/// `RetryTokens` — deterministically, with its failed attempt journaled.
#[test]
fn retry_token_exhaustion_sheds_in_input_order() {
    quiet_injected_panics();
    let fleet = fleet_boards_small(6, 3, 19);
    let faulted = [1usize, 4];
    let mut plan = FaultPlan::new();
    for &b in &faulted {
        plan = plan.panic_at_unit_on_attempt(unit_span(&fleet.boards, b).0, 0);
    }
    let policy = RetryPolicy {
        admission: AdmissionPolicy {
            retry_tokens: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut reference: Option<Vec<BoardOutcome>> = None;
    for share in [true, false] {
        for workers in 1..=4 {
            let label = format!("share={share} workers={workers}");
            let mut set = BoardSet::new(fleet.boards.clone());
            let resilient = route_fleet_resilient(
                &mut set,
                &FleetConfig {
                    fault: plan.clone(),
                    ..config(workers, share)
                },
                &policy,
            );
            match &reference {
                None => reference = Some(resilient.report.outcomes.clone()),
                Some(want) => assert_eq!(want, &resilient.report.outcomes, "{label}"),
            }
            // Board 1 won the only token; board 4's retry was starved.
            assert!(
                matches!(
                    resilient.report.outcomes[1],
                    BoardOutcome::Degraded {
                        step: DegradeStep::Retry,
                        attempts: 2
                    }
                ),
                "{label}: {:?}",
                resilient.report.outcomes[1]
            );
            assert!(
                matches!(
                    resilient.report.outcomes[4],
                    BoardOutcome::Shed(ShedReason::RetryTokens)
                ),
                "{label}: {:?}",
                resilient.report.outcomes[4]
            );
            assert_eq!(resilient.report.stats.retries, 1, "{label}");
            assert_eq!(resilient.report.stats.shed, 1, "{label}");
            assert_eq!(resilient.report.stats.degraded, 1, "{label}");
            // The shed board's journal keeps its real failure history.
            let j = &resilient.journals[4];
            assert_eq!(j.attempts.len(), 1, "{label}");
            assert!(matches!(j.attempts[0].outcome, BoardOutcome::Failed(_)));
            // Shed ≠ quarantined: the board never ran the ladder.
            assert!(resilient.quarantine.is_empty(), "{label}");
        }
    }
}

/// A poison board — panicking on every unit, every attempt — exhausts the
/// whole ladder, lands in quarantine with its panic provenance, and the
/// minimizer hands back a still-crashing repro at ≤ 25% of the original
/// entity count that round-trips through `layout::io`.
#[test]
fn poison_board_is_quarantined_with_a_minimized_repro() {
    quiet_injected_panics();
    let fleet = fleet_boards_small(4, 9, 33);
    let twins: Vec<Board> = fleet.boards.iter().map(sequential_twin).collect();
    let poison = 2usize;
    let (base, len) = unit_span(&fleet.boards, poison);
    assert!(len > 0);
    let mut plan = FaultPlan::new();
    for u in base..base + len {
        plan = plan.panic_at_unit(u);
    }
    let policy = RetryPolicy::default();
    let mut set = BoardSet::new(fleet.boards.clone());
    let resilient = route_fleet_resilient(
        &mut set,
        &FleetConfig {
            fault: plan.clone(),
            ..config(3, true)
        },
        &policy,
    );

    // Healthy boards rode through untouched by the poison neighbour.
    for b in [0usize, 1, 3] {
        assert!(resilient.report.outcomes[b].is_routed(), "board {b}");
        assert_geometry(&format!("board {b}"), &twins[b], set.boards()[b].board());
    }
    assert!(
        matches!(
            &resilient.report.outcomes[poison],
            BoardOutcome::Failed(JobError::Panicked { message, .. })
                if message.contains("injected fault")
        ),
        "{:?}",
        resilient.report.outcomes[poison]
    );
    // The full ladder ran: first attempt + one run per rung, all failed.
    let attempts = &resilient.journals[poison].attempts;
    assert_eq!(attempts.len(), 1 + policy.ladder.len());
    assert!(attempts
        .iter()
        .all(|a| matches!(a.outcome, BoardOutcome::Failed(_))));
    assert_eq!(resilient.report.stats.retries, policy.ladder.len() as u64);

    // Quarantine: one entry, with a minimized repro.
    assert_eq!(resilient.quarantine.entries.len(), 1);
    let entry = &resilient.quarantine.entries[0];
    assert_eq!(entry.board, poison);
    assert_eq!(entry.attempts, 1 + policy.ladder.len() as u32);
    let repro = entry.repro.as_ref().expect("minimized repro");
    assert_eq!(repro.original_entities, entity_count(&fleet.boards[poison]));
    assert!(
        repro.entities * 4 <= repro.original_entities,
        "minimized to {} of {} entities",
        repro.entities,
        repro.original_entities
    );
    assert!(repro.probes > 0);

    // The minimized board still reproduces the panic under the stored
    // probe plan — rerun it as a one-board fleet.
    let mut probe = BoardSet::new(vec![repro.board.clone()]);
    let probe_report = route_fleet(
        &mut probe,
        &FleetConfig {
            fault: entry.probe_plan.clone(),
            ..config(1, true)
        },
    );
    assert!(
        matches!(probe_report.outcomes[0], BoardOutcome::Failed(_)),
        "{:?}",
        probe_report.outcomes[0]
    );

    // And the serialized repro is a loadable bug report.
    let text = repro.text.as_ref().expect("serialized repro");
    let reloaded = load_board(text).expect("repro text loads");
    assert_eq!(
        reloaded.traces().count(),
        repro.board.board().traces().count()
    );
}
