//! Fleet determinism properties: for ANY worker count and either sharing
//! mode, `route_fleet` must reproduce per-board sequential
//! `match_all_groups` **bit for bit** — targets, trace reports, and routed
//! geometry. 64+ randomized fleets (library seed, board seed, fleet size,
//! worker count, sharing mode all drawn per case) plus the acceptance-size
//! 16-board fleet.
//!
//! Wall-clock fields (`GroupReport::runtime`, `FleetStats` timings) are
//! measurements, not outputs, and are deliberately not compared.

use meander_core::{match_all_groups, ExtendConfig, GroupReport};
use meander_fleet::{route_fleet, BoardSet, FleetConfig};
use meander_layout::gen::{fleet_boards_small, FleetCase};
use meander_layout::Board;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn serial_extend() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..Default::default()
    }
}

/// Routes every board of `fleet` sequentially through `match_all_groups`
/// on its materialized twin, returning the reference reports + boards.
fn sequential_reference(fleet: &FleetCase) -> (Vec<Vec<GroupReport>>, Vec<Board>) {
    let mut reports = Vec::with_capacity(fleet.boards.len());
    let mut boards = Vec::with_capacity(fleet.boards.len());
    for lb in &fleet.boards {
        let mut board = lb.to_board();
        reports.push(match_all_groups(&mut board, &serial_extend()));
        boards.push(board);
    }
    (reports, boards)
}

/// Asserts fleet output == sequential reference, bit for bit.
fn assert_identical(
    label: &str,
    set: &BoardSet,
    got: &[Vec<GroupReport>],
    want_reports: &[Vec<GroupReport>],
    want_boards: &[Board],
) {
    assert_eq!(got.len(), want_reports.len(), "{label}: board count");
    for (b, (g_board, w_board)) in got.iter().zip(want_reports).enumerate() {
        assert_eq!(g_board.len(), w_board.len(), "{label}: board {b} groups");
        for (gi, (g, w)) in g_board.iter().zip(w_board).enumerate() {
            assert_eq!(
                g.target.to_bits(),
                w.target.to_bits(),
                "{label}: board {b} group {gi} target"
            );
            assert_eq!(g.traces.len(), w.traces.len());
            for (x, y) in g.traces.iter().zip(&w.traces) {
                assert_eq!(x.id, y.id, "{label}: board {b} group {gi} order");
                assert_eq!(x.patterns, y.patterns, "{label}: board {b} {:?}", x.id);
                assert_eq!(
                    x.achieved.to_bits(),
                    y.achieved.to_bits(),
                    "{label}: board {b} {:?} achieved",
                    x.id
                );
                assert_eq!(x.initial.to_bits(), y.initial.to_bits());
                assert_eq!(x.via_msdtw, y.via_msdtw);
            }
        }
        // Geometry, vertex for vertex.
        for (id, t) in want_boards[b].traces() {
            let routed = set.boards()[b].board().trace(id).expect("routed trace");
            assert_eq!(
                t.centerline(),
                routed.centerline(),
                "{label}: board {b} trace {id:?} geometry"
            );
        }
    }
}

#[test]
fn randomized_fleets_match_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    for case in 0..64 {
        let library_seed = rng.gen_range(0..1_000_000) as u64;
        let per_board_seed = rng.gen_range(0..1_000_000) as u64;
        let n_boards = rng.gen_range(2..5);
        let workers = rng.gen_range(1..5);
        let share = rng.gen_range(0..2) == 1;
        let label = format!(
            "case {case} (lib {library_seed}, boards {per_board_seed}×{n_boards}, \
             workers {workers}, share {share})"
        );

        let fleet = fleet_boards_small(n_boards, library_seed, per_board_seed);
        let (want_reports, want_boards) = sequential_reference(&fleet);
        let mut set = BoardSet::new(fleet.boards.clone());
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: serial_extend(),
                workers: Some(workers),
                share_library: share,
                ..Default::default()
            },
        );
        assert_identical(&label, &set, &report.reports, &want_reports, &want_boards);
        assert_eq!(
            report.stats.scheduler.total_executed() as usize,
            report.stats.units,
            "{label}: every unit packet executed exactly once"
        );
    }
}

/// The acceptance-size fleet: ≥ 16 boards sharing one library, routed with
/// library sharing on a multi-worker pool, bit-identical to sequential.
#[test]
fn sixteen_board_fleet_bit_identical() {
    let fleet = fleet_boards_small(16, 2024, 7);
    assert_eq!(fleet.boards.len(), 16);
    let (want_reports, want_boards) = sequential_reference(&fleet);
    for (workers, share) in [(4, true), (2, false), (1, true)] {
        let mut set = BoardSet::new(fleet.boards.clone());
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: serial_extend(),
                workers: Some(workers),
                share_library: share,
                ..Default::default()
            },
        );
        let label = format!("16-board fleet, workers {workers}, share {share}");
        assert_identical(&label, &set, &report.reports, &want_reports, &want_boards);
        // The shared mode really shares: one library, one base build.
        if share {
            assert_eq!(report.stats.libraries, 1);
        }
        // Boards stay DRC-clean after fleet routing (materialize to pick
        // up the library obstacles the checker needs).
        for lb in set.boards() {
            let violations = lb.to_board().check();
            assert!(violations.is_empty(), "{label}: {violations:?}");
        }
    }
}

/// Worker count must not change results even when the per-unit engine's
/// own knobs vary (batched kernels, R-tree indexes, DP profile off).
#[test]
fn engine_knobs_and_worker_counts_commute() {
    let fleet = fleet_boards_small(3, 5, 9);
    let configs = [
        ExtendConfig {
            parallel: false,
            batch_kernels: true,
            ..Default::default()
        },
        ExtendConfig {
            parallel: false,
            index: meander_core::IndexKind::RTree,
            ..Default::default()
        },
        ExtendConfig {
            parallel: false,
            dp_profile: false,
            ..Default::default()
        },
    ];
    for (ci, extend) in configs.iter().enumerate() {
        // Reference: sequential per-board with the same engine knobs.
        let mut want: Vec<Vec<GroupReport>> = Vec::new();
        let mut want_boards: Vec<Board> = Vec::new();
        for lb in &fleet.boards {
            let mut board = lb.to_board();
            want.push(match_all_groups(&mut board, extend));
            want_boards.push(board);
        }
        for workers in [1, 3] {
            let mut set = BoardSet::new(fleet.boards.clone());
            let report = route_fleet(
                &mut set,
                &FleetConfig {
                    extend: extend.clone(),
                    workers: Some(workers),
                    share_library: true,
                    ..Default::default()
                },
            );
            assert_identical(
                &format!("knobs {ci}, workers {workers}"),
                &set,
                &report.reports,
                &want,
                &want_boards,
            );
        }
    }
}
