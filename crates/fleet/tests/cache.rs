//! Cache-equality property suite: attaching a [`ResultCache`] must never
//! change a routed bit.
//!
//! The exactness claim (see `fleet::cache` module docs) is that a cache
//! hit replays the very bytes routing would produce — determinism plus
//! content-addressed keys, no tolerance anywhere. These properties make
//! the claim executable:
//!
//! * 64 randomized duplicate-heavy fleets, workers 1–4 × sharing on/off:
//!   cache-on output bit-compared to cache-off (outcomes, report floats,
//!   centerlines);
//! * a warm second pass over a fresh copy of the fleet hits on every job
//!   and still matches bit for bit;
//! * content digests are insensitive to re-orderings without semantics
//!   (area map insertion order) and sensitive to ones with (trace order);
//! * a serving session with a cache replays an edit stream bit-identical
//!   to from-scratch uncached routing, invalidation stays precise under
//!   library edits (counter-asserted), and stale entries never serve;
//! * (under `--features fault`) a panicking job never inserts a poisoned
//!   entry.

use std::sync::Arc;

use meander_core::ExtendConfig;
use meander_fleet::{
    board_keys, route_fleet, BoardSet, Edit, EditScope, FleetConfig, FleetReport, FleetSession,
    ResultCache,
};
use meander_geom::{Point, Polyline, Rect, Vector};
use meander_layout::gen::{dup_fleet_boards_small, edit_stream};
use meander_layout::{hash_board_local, Board, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn serial_extend() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..Default::default()
    }
}

fn config(workers: usize, share: bool, cache: Option<Arc<ResultCache>>) -> FleetConfig {
    FleetConfig {
        extend: serial_extend(),
        workers: Some(workers),
        share_library: share,
        cache,
        ..Default::default()
    }
}

/// Two fleet runs over the same input must agree bit for bit: outcomes,
/// targets, every report float, every routed centerline.
fn assert_runs_identical(ctx: &str, a: (&BoardSet, &FleetReport), b: (&BoardSet, &FleetReport)) {
    let ((set_a, rep_a), (set_b, rep_b)) = (a, b);
    assert_eq!(rep_a.outcomes, rep_b.outcomes, "{ctx}: outcomes");
    assert_eq!(rep_a.reports.len(), rep_b.reports.len(), "{ctx}");
    for (bi, (w, g)) in rep_a.reports.iter().zip(&rep_b.reports).enumerate() {
        assert_eq!(w.len(), g.len(), "{ctx}: board {bi} group count");
        for (x, y) in w.iter().zip(g) {
            assert_eq!(x.target.to_bits(), y.target.to_bits(), "{ctx}: board {bi}");
            assert_eq!(x.traces.len(), y.traces.len(), "{ctx}: board {bi}");
            for (p, q) in x.traces.iter().zip(&y.traces) {
                assert_eq!(p.id, q.id, "{ctx}: board {bi}");
                assert_eq!(p.patterns, q.patterns, "{ctx}: board {bi} {:?}", p.id);
                assert_eq!(
                    p.achieved.to_bits(),
                    q.achieved.to_bits(),
                    "{ctx}: board {bi} {:?} achieved",
                    p.id
                );
                assert_eq!(p.initial.to_bits(), q.initial.to_bits(), "{ctx}");
                assert_eq!(p.via_msdtw, q.via_msdtw, "{ctx}");
            }
        }
    }
    for (bi, (la, lb)) in set_a.boards().iter().zip(set_b.boards()).enumerate() {
        for (id, t) in la.board().traces() {
            let other = lb.board().trace(id).expect("same trace set");
            assert_eq!(
                t.centerline(),
                other.centerline(),
                "{ctx}: board {bi} trace {id:?} geometry"
            );
        }
    }
}

/// The 64-case matrix: duplicate-heavy fleets with the cache attached
/// must be bit-identical to the same fleets routed uncached, for every
/// worker count and sharing mode drawn.
#[test]
fn cache_on_is_bit_identical_to_cache_off() {
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    for case in 0..64 {
        let seed = rng.gen_range(0..1_000_000) as u64;
        let n_boards = rng.gen_range(3..6);
        let dup_rate = [0.5, 0.7, 0.9][rng.gen_range(0..3usize)];
        let workers = rng.gen_range(1..5);
        let share = rng.gen_range(0..2) == 1;
        let ctx = format!(
            "case {case} (seed {seed}, boards {n_boards}, dup {dup_rate}, \
             workers {workers}, share {share})"
        );

        let fleet = dup_fleet_boards_small(n_boards, dup_rate, seed);
        let mut plain = BoardSet::new(fleet.boards.clone());
        let plain_report = route_fleet(&mut plain, &config(workers, share, None));
        assert_eq!(
            plain_report.stats.cache_hits + plain_report.stats.cache_misses,
            0
        );

        let cache = Arc::new(ResultCache::default());
        let mut cached = BoardSet::new(fleet.boards.clone());
        let cached_report = route_fleet(
            &mut cached,
            &config(workers, share, Some(Arc::clone(&cache))),
        );
        assert_runs_identical(&ctx, (&plain, &plain_report), (&cached, &cached_report));
        // Every unit packet consulted the cache exactly once (these
        // fleets have no zero-unit groups, so there are no extra
        // planning-time consults).
        assert_eq!(
            (cached_report.stats.cache_hits + cached_report.stats.cache_misses) as usize,
            cached_report.stats.units_run,
            "{ctx}: hit/miss partition the unit packets"
        );
    }
}

/// A warm second pass over a fresh copy of the same fleet serves every
/// job from the cache — and is still bit-identical.
#[test]
fn warm_pass_hits_everything_and_matches() {
    let fleet = dup_fleet_boards_small(8, 0.7, 41);
    let cache = Arc::new(ResultCache::default());
    let cfg = config(3, true, Some(Arc::clone(&cache)));

    let mut cold = BoardSet::new(fleet.boards.clone());
    let cold_report = route_fleet(&mut cold, &cfg);
    assert!(cold_report.all_routed());
    assert!(cold_report.stats.cache_misses > 0, "cold pass routes");
    // Duplicates within the cold pass already hit (scheduling decides
    // how many, at least the clones of already-inserted boards can).
    let inserted = cache.len();
    assert!(inserted > 0);

    let mut warm = BoardSet::new(fleet.boards.clone());
    let warm_report = route_fleet(&mut warm, &cfg);
    assert_eq!(
        warm_report.stats.cache_hits as usize, warm_report.stats.units,
        "warm pass serves every unit packet from the cache"
    );
    assert_eq!(warm_report.stats.cache_misses, 0);
    assert_eq!(cache.len(), inserted, "warm pass inserts nothing");
    assert_runs_identical("warm vs cold", (&cold, &cold_report), (&warm, &warm_report));
}

fn two_trace_board(flip: bool) -> Board {
    let mut board = Board::new(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 60.0)));
    let t1 = Trace::new(
        "A",
        Polyline::new(vec![Point::new(0.0, 20.0), Point::new(100.0, 20.0)]),
        2.0,
    );
    let t2 = Trace::new(
        "B",
        Polyline::new(vec![Point::new(0.0, 40.0), Point::new(100.0, 40.0)]),
        2.0,
    );
    if flip {
        board.add_trace(t2);
        board.add_trace(t1);
    } else {
        board.add_trace(t1);
        board.add_trace(t2);
    }
    board
}

/// Digests ignore orderings without routing semantics (the area map's
/// insertion order) and respect ones with (trace insertion order fixes
/// the id space the router sees).
#[test]
fn digest_ordering_semantics() {
    use meander_geom::Polygon;
    use meander_layout::{RoutableArea, TraceId};

    let area = |lo: f64| {
        RoutableArea::from_polygon(Polygon::rectangle(
            Point::new(0.0, lo),
            Point::new(100.0, lo + 25.0),
        ))
    };
    let mut fwd = two_trace_board(false);
    fwd.set_area(TraceId(0), area(5.0));
    fwd.set_area(TraceId(1), area(30.0));
    let mut rev = two_trace_board(false);
    rev.set_area(TraceId(1), area(30.0));
    rev.set_area(TraceId(0), area(5.0));
    assert_eq!(
        hash_board_local(&fwd),
        hash_board_local(&rev),
        "area insertion order has no routing semantics"
    );

    assert_ne!(
        hash_board_local(&two_trace_board(false)),
        hash_board_local(&two_trace_board(true)),
        "trace order assigns ids — it is semantic"
    );
}

/// A serving session with the cache attached replays every prefix of an
/// edit stream bit-identical to from-scratch *uncached* routing: no
/// stale entry ever serves, across content edits, structural edits, and
/// library transitions.
#[test]
fn session_with_cache_replays_edit_stream_exactly() {
    for workers in [1usize, 4] {
        let cache = Arc::new(ResultCache::default());
        let cached_cfg = config(workers, true, Some(Arc::clone(&cache)));
        let plain_cfg = config(workers, true, None);
        let case = dup_fleet_boards_small(4, 0.6, 23 + workers as u64);
        let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cached_cfg);
        assert!(session.report().all_routed());
        for (k, edit) in edit_stream(&case, 900 + workers as u64, 9)
            .into_iter()
            .enumerate()
        {
            let ctx = format!("workers={workers} prefix={k} edit={edit}");
            let _ = session.apply_edit(edit);
            let report = session.reroute_dirty(&cached_cfg);
            assert!(!session.pending(), "{ctx}");
            // Reference: from scratch, no cache anywhere.
            let mut reference = BoardSet::new(session.pristine_boards());
            let want = route_fleet(&mut reference, &plain_cfg);
            let got = session.report();
            assert_runs_identical(&ctx, (&reference, &want), (session.boards(), &got));
            let _ = report;
        }
    }
}

/// A single library move invalidates only the entries whose recorded
/// touches intersect the damage; the rest survive re-keyed under the new
/// Merkle root (counter-asserted), and the next re-route still matches
/// from-scratch.
#[test]
fn library_edit_invalidation_is_precise() {
    let cache = Arc::new(ResultCache::default());
    let cfg = config(2, true, Some(Arc::clone(&cache)));
    let case = dup_fleet_boards_small(10, 0.5, 77);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    assert!(session.report().all_routed());
    let entries = cache.len();
    assert!(entries > 0);
    let before = cache.stats();

    // Library obstacles are corridor-major: with 3 vias per corridor,
    // index 7 sits in the top corridor, which only 3-trace boards route.
    let _ = session.apply_edit(Edit::MoveObstacle {
        scope: EditScope::Library(0),
        index: 7,
        by: Vector::new(1.5, 1.0),
    });
    let _ = session.reroute_dirty(&cfg);
    let after = cache.stats();
    let invalidated = after.invalidated - before.invalidated;
    let rekeyed = after.rekeyed - before.rekeyed;
    assert_eq!(
        (invalidated + rekeyed) as usize,
        entries,
        "the transition classifies every entry"
    );
    assert!(
        rekeyed > 0,
        "entries outside the edited corridor survive re-keyed \
         (invalidated {invalidated} of {entries})"
    );
    assert!(
        (invalidated as usize) < entries,
        "a single move must not flush the cache"
    );

    // The survivors serve under the new root, and the result is exact.
    let mut reference = BoardSet::new(session.pristine_boards());
    let want = route_fleet(&mut reference, &config(2, true, None));
    assert_runs_identical(
        "post-invalidation",
        (&reference, &want),
        (session.boards(), &session.report()),
    );
}

/// A board-local edit touches only that board's content digest: twins
/// of *other* content keep their entries and the next warm lookup still
/// hits them.
#[test]
fn board_edit_leaves_other_boards_entries() {
    let cache = Arc::new(ResultCache::default());
    let cfg = config(2, true, Some(Arc::clone(&cache)));
    let case = dup_fleet_boards_small(5, 0.0, 13);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let keys_other: Vec<_> = board_keys(&session.pristine_boards()[3], &cfg.extend);
    assert!(keys_other.iter().all(|k| cache.contains(k)));

    let _ = session.apply_edit(Edit::MoveObstacle {
        scope: EditScope::Board(0),
        index: 1,
        by: Vector::new(2.0, 0.0),
    });
    let _ = session.reroute_dirty(&cfg);
    // Board 3 was untouched: its entries survive under unchanged keys.
    assert!(
        keys_other.iter().all(|k| cache.contains(k)),
        "board-local damage must not reach other boards' entries"
    );
}

/// Chaos coverage: a job that panics mid-group never inserts — the cache
/// holds no entry under the crashed board's keys and is exactly as large
/// as the healthy boards' group count.
#[cfg(feature = "fault")]
#[test]
fn panicked_job_never_inserts_a_poisoned_entry() {
    use meander_fleet::{BoardOutcome, FaultPlan};

    let fleet = dup_fleet_boards_small(3, 0.0, 9);
    let cache = Arc::new(ResultCache::default());
    let mut cfg = config(2, true, Some(Arc::clone(&cache)));
    // Unit 0 is board 0's first unit (input order), every attempt.
    cfg.fault = FaultPlan::new().panic_at_unit(0);
    let mut set = BoardSet::new(fleet.boards.clone());
    let report = route_fleet(&mut set, &cfg);
    assert!(matches!(report.outcomes[0], BoardOutcome::Failed(_)));
    assert!(report.outcomes[1].is_routed() && report.outcomes[2].is_routed());

    for key in board_keys(&fleet.boards[0], &cfg.extend) {
        assert!(
            !cache.contains(&key),
            "a panicked job must not leave an entry behind"
        );
    }
    let healthy_groups: usize = fleet.boards[1..]
        .iter()
        .map(|lb| lb.board().groups().len())
        .sum();
    assert_eq!(cache.len(), healthy_groups, "only healthy groups inserted");
}
