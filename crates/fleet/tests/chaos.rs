//! Chaos properties (feature `fault`): the fleet's failure domains hold
//! under deterministic fault injection.
//!
//! The contract under test, from the engine's module docs: one bad board
//! costs exactly one board. Concretely, for ANY seeded [`FaultPlan`],
//! worker count, and sharing mode:
//!
//! * every unaffected board routes **bit-identically** to its sequential
//!   per-board reference;
//! * every affected board keeps its input geometry untouched and reports
//!   a typed [`BoardOutcome`] saying why;
//! * the outcome vector itself is identical across worker counts (faults
//!   key on input order, not execution order);
//! * the process survives — a panicking job never takes down the pool.
//!
//! Run with `cargo test -p meander-fleet --features fault`.
#![cfg(feature = "fault")]

use meander_core::{match_all_groups, plan_board_units, ExtendConfig};
use meander_fleet::{
    route_fleet, BoardOutcome, BoardSet, CancelToken, FaultPlan, FleetConfig, JobError,
};
use meander_geom::{Point, Polygon, Polyline};
use meander_layout::gen::fleet_boards_small;
use meander_layout::{
    Board, LibraryBoard, MatchGroup, Obstacle, ObstacleKind, TraceId, ValidationError,
};
use std::sync::Once;
use std::time::{Duration, Instant};

/// Silences the default panic hook for *injected* panics only, so chaos
/// runs don't spray backtraces over the test output. Real panics (test
/// assertions included) still print through the previous hook.
fn quiet_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
    });
}

fn serial_extend() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..Default::default()
    }
}

fn config(workers: usize, share: bool) -> FleetConfig {
    FleetConfig {
        extend: serial_extend(),
        workers: Some(workers),
        share_library: share,
        ..Default::default()
    }
}

/// Routes `lb`'s materialized twin sequentially and returns the board —
/// the bit-identity reference for one fleet board.
fn sequential_twin(lb: &LibraryBoard) -> Board {
    let mut board = lb.to_board();
    let _ = match_all_groups(&mut board, &serial_extend());
    board
}

/// Asserts `got`'s local geometry equals `want`'s, vertex for vertex, by
/// float *bits* — the actual contract, and the only comparison that holds
/// for deliberately NaN-poisoned boards (`NaN != NaN` under `==`).
fn assert_geometry(label: &str, want: &Board, got: &Board) {
    for (id, t) in want.traces() {
        let g = got.trace(id).expect("trace");
        let wp = t.centerline().points();
        let gp = g.centerline().points();
        assert_eq!(wp.len(), gp.len(), "{label}: trace {id:?} vertex count");
        for (i, (a, b)) in wp.iter().zip(gp).enumerate() {
            assert_eq!(
                (a.x.to_bits(), a.y.to_bits()),
                (b.x.to_bits(), b.y.to_bits()),
                "{label}: trace {id:?} vertex {i}: {a:?} vs {b:?}"
            );
        }
    }
}

/// The global input-order index of `board`'s first unit, plus its unit
/// count — how a [`FaultPlan`] targets one board's units.
fn unit_span(boards: &[LibraryBoard], board: usize) -> (u64, u64) {
    let units_of = |lb: &LibraryBoard| -> u64 {
        plan_board_units(lb.board())
            .iter()
            .map(|(_, units)| units.len() as u64)
            .sum()
    };
    let base: u64 = boards[..board].iter().map(&units_of).sum();
    (base, units_of(&boards[board]))
}

/// The acceptance scenario: one board panics mid-route, one board is
/// malformed, and the fleet still returns a typed outcome for every
/// board with the healthy ones routed bit-identically.
#[test]
fn panicking_and_malformed_boards_fail_alone() {
    quiet_injected_panics();
    let fleet = fleet_boards_small(4, 21, 42);
    let mut boards = fleet.boards.clone();
    // Malform board 2: NaN coordinate on its first trace.
    {
        let board = boards[2].board_mut();
        let id = board.traces().next().map(|(id, _)| id).expect("trace");
        let trace = board.trace_mut(id).expect("trace");
        let mut pts = trace.centerline().points().to_vec();
        pts[0] = Point::new(f64::NAN, pts[0].y);
        trace.set_centerline(Polyline::new(pts));
    }
    let input_snapshot: Vec<Board> = boards.iter().map(|lb| lb.board().clone()).collect();
    // Panic at the first unit of board 1 (input-order index: board 2 is
    // rejected before planning, but board 1 precedes it, so its span is
    // unaffected).
    let (base, len) = unit_span(&boards, 1);
    assert!(len > 0, "board 1 must have routable units");
    let plan = FaultPlan::new().panic_at_unit(base);

    for workers in 1..=4 {
        let mut set = BoardSet::new(boards.clone());
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                fault: plan.clone(),
                ..config(workers, true)
            },
        );
        // Process alive, one outcome per board.
        assert_eq!(report.outcomes.len(), 4, "workers={workers}");
        match &report.outcomes[1] {
            BoardOutcome::Failed(JobError::Panicked {
                group,
                unit,
                message,
            }) => {
                assert_eq!(*group, 0, "first group panicked");
                // The diagnostics pin the crash to the unit that was running.
                assert_eq!(*unit, Some(0), "workers={workers}");
                assert!(message.contains("injected fault"), "{message}");
            }
            other => panic!("workers={workers}: board 1 should fail, got {other:?}"),
        }
        assert!(matches!(
            report.outcomes[2],
            BoardOutcome::Rejected(ValidationError::NonFiniteCoordinate { .. })
        ));
        assert!(report.outcomes[0].is_routed(), "workers={workers}");
        assert!(report.outcomes[3].is_routed(), "workers={workers}");
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.stats.routed, 2);
        assert_eq!(report.stats.scheduler.total_panics(), 1);

        // Healthy boards: bit-identical to their sequential twins.
        for b in [0usize, 3] {
            let want = sequential_twin(&fleet.boards[b]);
            assert_geometry(
                &format!("workers={workers} board {b}"),
                &want,
                set.boards()[b].board(),
            );
            assert!(!report.reports[b].is_empty());
        }
        // Affected boards: geometry exactly as submitted.
        for b in [1usize, 2] {
            assert_geometry(
                &format!("workers={workers} board {b} untouched"),
                &input_snapshot[b],
                set.boards()[b].board(),
            );
            assert!(report.reports[b].is_empty());
        }
    }
}

/// Seeded chaos sweep: random panic/delay/trip plans across worker
/// counts and sharing modes. Outcomes must be invariant across workers,
/// routed boards bit-identical to sequential, affected boards untouched.
#[test]
fn seeded_fault_plans_preserve_the_per_board_contract() {
    quiet_injected_panics();
    for seed in [1u64, 7, 1234, 0xC0FFEE] {
        let fleet = fleet_boards_small(5, seed.wrapping_mul(3) % 97 + 1, seed % 89 + 1);
        let input_snapshot: Vec<Board> = fleet.boards.iter().map(|lb| lb.board().clone()).collect();
        let twins: Vec<Board> = fleet.boards.iter().map(sequential_twin).collect();
        // Shape the plan on the clean run's dimensions.
        let (units, jobs) = {
            let mut probe = BoardSet::new(fleet.boards.clone());
            let stats = route_fleet(&mut probe, &config(1, true)).stats;
            (stats.units as u64, stats.jobs as u64)
        };
        let plan = FaultPlan::seeded(seed, units, jobs, fleet.boards.len());

        let mut reference_outcomes: Option<Vec<BoardOutcome>> = None;
        for share in [true, false] {
            for workers in 1..=4 {
                let label = format!("seed={seed} share={share} workers={workers}");
                let mut set = BoardSet::new(fleet.boards.clone());
                let report = route_fleet(
                    &mut set,
                    &FleetConfig {
                        fault: plan.clone(),
                        ..config(workers, share)
                    },
                );
                assert_eq!(report.outcomes.len(), 5, "{label}");
                // The outcome vector is a pure function of the plan —
                // identical for every scheduling.
                match &reference_outcomes {
                    None => reference_outcomes = Some(report.outcomes.clone()),
                    Some(want) => assert_eq!(want, &report.outcomes, "{label}"),
                }
                // Stats partition the fleet.
                let s = &report.stats;
                assert_eq!(
                    s.routed + s.rejected + s.failed + s.cancelled + s.deadline_exceeded,
                    5,
                    "{label}"
                );
                for (b, outcome) in report.outcomes.iter().enumerate() {
                    if outcome.is_routed() {
                        assert_geometry(&label, &twins[b], set.boards()[b].board());
                        assert!(!report.reports[b].is_empty(), "{label} board {b}");
                    } else {
                        assert_geometry(&label, &input_snapshot[b], set.boards()[b].board());
                        assert!(report.reports[b].is_empty(), "{label} board {b}");
                    }
                }
            }
        }
        let outcomes = reference_outcomes.expect("at least one run");
        // The seeded plan trips exactly one board's validation.
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| matches!(o, BoardOutcome::Rejected(ValidationError::Injected { .. })))
                .count(),
            1,
            "seed={seed}: {outcomes:?}"
        );
    }
}

/// Cancellation fired mid-run stops the fleet within one unit's work:
/// a scripted pop delay holds the first job open while the token fires,
/// and everything after the trip is cancelled, geometry untouched.
#[test]
fn mid_run_cancellation_stops_within_one_unit() {
    quiet_injected_panics();
    let fleet = fleet_boards_small(4, 31, 17);
    let input_snapshot: Vec<Board> = fleet.boards.iter().map(|lb| lb.board().clone()).collect();
    let token = CancelToken::new();
    let remote = token.clone();
    let plan = FaultPlan::new().delay_at_pop(0, Duration::from_millis(120));
    let firing = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        remote.cancel();
    });
    let t0 = Instant::now();
    let mut set = BoardSet::new(fleet.boards.clone());
    let report = route_fleet(
        &mut set,
        &FleetConfig {
            cancel: Some(token),
            fault: plan,
            ..config(1, true)
        },
    );
    let elapsed = t0.elapsed();
    firing.join().expect("cancel thread");
    // The token fired during job 0's scripted sleep; its first unit
    // boundary observes it, so no unit ever runs and every board is
    // cancelled with its geometry untouched.
    assert!(
        report
            .outcomes
            .iter()
            .all(|o| matches!(o, BoardOutcome::Cancelled)),
        "{:?}",
        report.outcomes
    );
    assert_eq!(report.stats.cancelled, 4);
    assert_eq!(report.stats.units_run, 0);
    for (b, snap) in input_snapshot.iter().enumerate() {
        assert_geometry(&format!("board {b}"), snap, set.boards()[b].board());
    }
    // Drained promptly: the delay plus scheduling slack, nowhere near a
    // full fleet route.
    assert!(elapsed < Duration::from_secs(5), "{elapsed:?}");
}

/// Validation rejects each malformed mutation with the right typed error
/// while the rest of the fleet routes bit-identically.
#[test]
fn malformed_mutations_are_rejected_with_provenance() {
    quiet_injected_panics();
    type Mutate = fn(&mut Board);
    type Expect = fn(&ValidationError) -> bool;
    let cases: Vec<(&str, Mutate, Expect)> = vec![
        (
            "nan-coordinate",
            |board| {
                let id = board.traces().next().map(|(id, _)| id).expect("trace");
                let trace = board.trace_mut(id).expect("trace");
                let mut pts = trace.centerline().points().to_vec();
                pts[0] = Point::new(f64::NAN, pts[0].y);
                trace.set_centerline(Polyline::new(pts));
            },
            |e| matches!(e, ValidationError::NonFiniteCoordinate { .. }),
        ),
        (
            "degenerate-obstacle",
            |board| {
                board.add_obstacle(Obstacle::new(
                    Polygon::new(vec![
                        Point::new(1.0, 1.0),
                        Point::new(2.0, 2.0),
                        Point::new(3.0, 3.0),
                    ]),
                    ObstacleKind::Keepout,
                ));
            },
            |e| matches!(e, ValidationError::DegeneratePolygon { .. }),
        ),
        (
            "empty-group",
            |board| board.add_group(MatchGroup::new("hollow", vec![])),
            |e| matches!(e, ValidationError::EmptyGroup { .. }),
        ),
        (
            "dangling-member",
            |board| board.add_group(MatchGroup::new("ghost", vec![TraceId(999)])),
            |e| matches!(e, ValidationError::UnknownGroupMember { member: 999, .. }),
        ),
        (
            "nan-gap-rule",
            |board| {
                let id = board.traces().next().map(|(id, _)| id).expect("trace");
                let trace = board.trace_mut(id).expect("trace");
                let mut rules = *trace.rules();
                rules.gap = f64::NAN;
                trace.set_rules(rules);
            },
            |e| matches!(e, ValidationError::BadRules { .. }),
        ),
    ];

    for (name, mutate, expect) in cases {
        let fleet = fleet_boards_small(3, 11, 23);
        let twins: Vec<Board> = fleet.boards.iter().map(sequential_twin).collect();
        let mut boards = fleet.boards.clone();
        mutate(boards[1].board_mut());
        let poisoned = boards[1].board().clone();
        let mut set = BoardSet::new(boards);
        let report = route_fleet(&mut set, &config(2, true));
        match &report.outcomes[1] {
            BoardOutcome::Rejected(err) => assert!(expect(err), "{name}: {err}"),
            other => panic!("{name}: expected rejection, got {other:?}"),
        }
        assert_eq!(report.stats.rejected, 1, "{name}");
        assert_eq!(report.stats.routed, 2, "{name}");
        assert_geometry(
            &format!("{name} untouched"),
            &poisoned,
            set.boards()[1].board(),
        );
        for b in [0usize, 2] {
            assert_geometry(
                &format!("{name} board {b}"),
                &twins[b],
                set.boards()[b].board(),
            );
        }
    }
}

/// Per-board busy budgets expire slow boards without touching fast ones.
/// With a 1 ns budget and one worker (deterministic serial order), the
/// first unit of each board runs — the budget is polled *before* each
/// unit, and nothing is charged yet — and every later unit of that board
/// halts. So boards with one unit still route; boards with more exceed
/// their deadline, geometry untouched.
#[test]
fn board_budget_expires_at_unit_boundaries() {
    quiet_injected_panics();
    let fleet = fleet_boards_small(3, 5, 9);
    let input_snapshot: Vec<Board> = fleet.boards.iter().map(|lb| lb.board().clone()).collect();
    let spans: Vec<u64> = (0..3).map(|b| unit_span(&fleet.boards, b).1).collect();
    assert!(
        spans.iter().any(|&len| len >= 2),
        "need at least one multi-unit board: {spans:?}"
    );
    let mut set = BoardSet::new(fleet.boards.clone());
    let report = route_fleet(
        &mut set,
        &FleetConfig {
            board_budget: Some(Duration::from_nanos(1)),
            ..config(1, true)
        },
    );
    for (b, &len) in spans.iter().enumerate() {
        if len >= 2 {
            assert!(
                matches!(report.outcomes[b], BoardOutcome::DeadlineExceeded),
                "board {b} ({len} units): {:?}",
                report.outcomes[b]
            );
            assert_geometry(
                &format!("board {b} untouched"),
                &input_snapshot[b],
                set.boards()[b].board(),
            );
        } else {
            assert!(report.outcomes[b].is_routed(), "board {b}");
        }
    }
    // An unbudgeted run of the same fleet routes everything.
    let mut set = BoardSet::new(fleet.boards);
    let report = route_fleet(&mut set, &config(1, true));
    assert!(report.all_routed(), "{:?}", report.outcomes);
}
