//! Equality property suite for the serving loop: after every prefix of a
//! random edit stream, [`FleetSession::reroute_dirty`] must be
//! **bit-identical** to from-scratch [`route_fleet`] of the edited fleet —
//! across worker counts 1–4 and both library-sharing modes (the 4 × 2 × 8
//! matrix below exercises 64 randomized prefixes). This is the cell-
//! intersection soundness argument (see `fleet::session` module docs) made
//! executable: if skipping a unit could ever change a bit, some prefix
//! here would catch the divergence in the routed floats or geometry.

use meander_core::ExtendConfig;
use meander_fleet::{route_fleet, BoardSet, Edit, EditScope, FleetConfig, FleetSession};
use meander_geom::Vector;
use meander_layout::gen::{edit_stream, fleet_boards_small};

fn serial_extend() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..Default::default()
    }
}

fn config(workers: usize, share: bool) -> FleetConfig {
    FleetConfig {
        extend: serial_extend(),
        workers: Some(workers),
        share_library: share,
        ..Default::default()
    }
}

/// The session's served state and report must equal a from-scratch route
/// of its pristine (edited) fleet, bit for bit.
fn assert_bit_identical(session: &FleetSession, cfg: &FleetConfig, ctx: &str) {
    let got = session.report();
    let mut reference = BoardSet::new(session.pristine_boards());
    let want = route_fleet(&mut reference, cfg);
    assert_eq!(want.outcomes, got.outcomes, "{ctx}: outcomes");
    assert_eq!(want.reports.len(), got.reports.len(), "{ctx}");
    for (b, (w, g)) in want.reports.iter().zip(&got.reports).enumerate() {
        assert_eq!(w.len(), g.len(), "{ctx}: board {b} group count");
        for (x, y) in w.iter().zip(g) {
            assert_eq!(x.target.to_bits(), y.target.to_bits(), "{ctx}: board {b}");
            assert_eq!(x.traces.len(), y.traces.len(), "{ctx}: board {b}");
            for (a, c) in x.traces.iter().zip(&y.traces) {
                assert_eq!(a.id, c.id, "{ctx}: board {b}");
                assert_eq!(a.patterns, c.patterns, "{ctx}: board {b} trace {:?}", a.id);
                assert_eq!(
                    a.achieved.to_bits(),
                    c.achieved.to_bits(),
                    "{ctx}: board {b} trace {:?}",
                    a.id
                );
                assert_eq!(a.initial.to_bits(), c.initial.to_bits(), "{ctx}: board {b}");
                assert_eq!(a.via_msdtw, c.via_msdtw, "{ctx}: board {b}");
            }
        }
    }
    // Geometry: every trace of every board, exact centerlines.
    for (b, ref_board) in reference.boards().iter().enumerate() {
        for (id, t) in ref_board.board().traces() {
            let routed = session.boards().boards()[b]
                .board()
                .trace(id)
                .expect("same trace set");
            assert_eq!(
                t.centerline(),
                routed.centerline(),
                "{ctx}: board {b} trace {id:?} geometry"
            );
        }
    }
}

/// The 64-prefix matrix: workers 1–4 × share on/off × 8 edit-stream
/// prefixes, every prefix checked bit-identical to from-scratch.
#[test]
fn reroute_dirty_matches_from_scratch_across_configs() {
    let mut prefixes = 0usize;
    for workers in 1..=4usize {
        for share in [true, false] {
            let cfg = config(workers, share);
            let seed = 100 + 10 * workers as u64 + u64::from(share);
            let case = fleet_boards_small(3, 7, 11 + seed);
            let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
            assert!(session.report().all_routed(), "initial route");
            for (k, edit) in edit_stream(&case, seed, 8).into_iter().enumerate() {
                let ctx = format!("workers={workers} share={share} prefix={k} edit={edit}");
                let _ = session.apply_edit(edit);
                let report = session.reroute_dirty(&cfg);
                assert_eq!(
                    report.stats.units_dirty + report.stats.units_skipped,
                    report.stats.units,
                    "{ctx}: damage counters partition the units"
                );
                assert!(!session.pending(), "{ctx}: re-route consumes all damage");
                assert_bit_identical(&session, &cfg, &ctx);
                prefixes += 1;
            }
        }
    }
    assert!(prefixes >= 64, "the matrix must cover at least 64 prefixes");
}

/// A re-route with no damage runs zero units and changes nothing.
#[test]
fn zero_damage_reroute_skips_everything() {
    let cfg = config(2, true);
    let case = fleet_boards_small(3, 7, 11);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let before: Vec<_> = session
        .boards()
        .boards()
        .iter()
        .map(|lb| lb.board().clone())
        .collect();
    assert!(!session.pending());
    let report = session.reroute_dirty(&cfg);
    assert!(report.all_routed());
    assert_eq!(report.stats.units_dirty, 0);
    assert_eq!(report.stats.units_skipped, report.stats.units);
    assert_eq!(report.stats.units_run, 0);
    assert_eq!(report.stats.cells_dirty, 0);
    assert_eq!(report.stats.boards_replanned, 0);
    for (b, old) in before.iter().enumerate() {
        for (id, t) in old.traces() {
            let now = session.boards().boards()[b].board().trace(id).unwrap();
            assert_eq!(t.centerline(), now.centerline());
        }
    }
}

/// Damage scoped to one board can only dirty that board's units.
#[test]
fn board_local_edit_stays_board_local() {
    let cfg = config(2, true);
    let case = fleet_boards_small(3, 7, 11);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let per_board_units = session.report().stats.units / 3;
    let damage = session.apply_edit(Edit::MoveObstacle {
        scope: EditScope::Board(1),
        index: 3,
        by: Vector::new(2.0, 1.0),
    });
    assert_eq!(damage.boards_affected, 1);
    assert!(!damage.structural);
    assert!(session.pending());
    let report = session.reroute_dirty(&cfg);
    assert!(
        report.stats.units_dirty <= per_board_units,
        "dirty units {} exceed board 1's unit count {per_board_units}",
        report.stats.units_dirty
    );
    assert!(report.stats.cells_dirty > 0);
    assert_bit_identical(&session, &cfg, "board-local move");
}

/// A library edit damages every referencing board; the result still
/// matches from-scratch.
#[test]
fn library_edit_spans_the_fleet() {
    let cfg = config(3, true);
    let case = fleet_boards_small(3, 7, 11);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let damage = session.apply_edit(Edit::MoveObstacle {
        scope: EditScope::Library(0),
        index: 5,
        by: Vector::new(-3.0, 2.0),
    });
    assert_eq!(
        damage.boards_affected, 3,
        "one shared library, three boards"
    );
    let _ = session.reroute_dirty(&cfg);
    assert_bit_identical(&session, &cfg, "library move");
}

/// `SetRules` is structural: exactly the edited board replans and
/// re-routes; everything else is skipped — and the rebuilt board is
/// bit-identical to a from-scratch route under the new rules.
#[test]
fn set_rules_reroutes_exactly_that_board() {
    let cfg = config(2, true);
    let case = fleet_boards_small(3, 7, 11);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let total = session.report().stats.units;
    let board_units = total / 3;
    let mut rules = *case.boards[0].board().traces().next().unwrap().1.rules();
    rules.gap += 1.0;
    let damage = session.apply_edit(Edit::SetRules { board: 2, rules });
    assert!(damage.structural);
    assert_eq!(damage.boards_affected, 1);
    let report = session.reroute_dirty(&cfg);
    assert_eq!(
        report.stats.units_dirty, board_units,
        "only board 2 re-runs"
    );
    assert_eq!(report.stats.units_skipped, total - board_units);
    assert_eq!(
        report.stats.boards_replanned, 1,
        "a structural edit to one board replans exactly that board"
    );
    assert_bit_identical(&session, &cfg, "set-rules");
}

/// With the rebuild engine (`incremental: false`) units record `mark_all`,
/// so any real damage re-routes everything — conservative, still correct.
#[test]
fn rebuild_engine_falls_back_to_reroute_all() {
    let mut cfg = config(2, true);
    cfg.extend.incremental = false;
    let case = fleet_boards_small(2, 7, 11);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let total = session.report().stats.units;
    // Library-scope damage covers every board; with `mark_all` touches no
    // unit can prove itself clean against it.
    let _ = session.apply_edit(Edit::MoveObstacle {
        scope: EditScope::Library(0),
        index: 0,
        by: Vector::new(1.0, 1.0),
    });
    let report = session.reroute_dirty(&cfg);
    assert_eq!(
        report.stats.units_dirty, total,
        "mark_all re-routes everything"
    );
    assert_bit_identical(&session, &cfg, "rebuild engine");
}

/// Removing from an empty obstacle list is a no-op costing only the
/// damage-report bookkeeping.
#[test]
fn no_op_edits_cost_nothing() {
    let cfg = config(1, true);
    let mut case = fleet_boards_small(2, 7, 11);
    // Strip board 0's local obstacles so the remove has nothing to hit.
    while !case.boards[0].board().obstacles().is_empty() {
        case.boards[0].board_mut().remove_obstacle(0);
    }
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let damage = session.apply_edit(Edit::RemoveObstacle {
        scope: EditScope::Board(0),
        index: 9,
    });
    assert_eq!(damage.boards_affected, 0);
    assert_eq!(damage.cells_dirty, 0);
    assert!(!session.pending());
    let report = session.reroute_dirty(&cfg);
    assert_eq!(report.stats.units_dirty, 0);
    assert_bit_identical(&session, &cfg, "no-op remove");
}

/// The damage counters surface in the one-line summary.
#[test]
fn summary_reports_skip_rate() {
    let cfg = config(2, true);
    let case = fleet_boards_small(2, 7, 11);
    let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &cfg);
    let _ = session.apply_edit(Edit::MoveObstacle {
        scope: EditScope::Board(0),
        index: 0,
        by: Vector::new(1.0, 0.5),
    });
    let report = session.reroute_dirty(&cfg);
    let line = report.summary();
    assert!(line.contains("dirty="), "{line}");
    assert!(line.contains("skipped="), "{line}");
    assert!(line.contains("skip_rate="), "{line}");
    assert!(line.contains("cells_dirty="), "{line}");
}
