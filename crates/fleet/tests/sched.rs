//! Scheduler equality property suite: **no scheduling policy may change a
//! routed bit**.
//!
//! The bucketed scheduler (`fleet::sched`) decides only *who computes
//! what when* — results land in input-order slots and write back in
//! input order, so output must be bit-identical to per-board sequential
//! `match_all_groups` for ANY bucket configuration, worker count, and
//! preemption schedule. These properties make that executable:
//!
//! * 64 randomized fleets × pool configs (ephemeral / private / shared
//!   long-lived scheduler with yield toggles) × workers 1–4, bit-compared
//!   to the sequential reference;
//! * an interactive serving session preempting a concurrent batch fleet
//!   on one shared scheduler, at timing-randomized preemption points —
//!   both outputs bit-identical to their unloaded references;
//! * a speculative warm-up pass that installs only through exact cache
//!   keys: a warmed cold run hits on every unit and still matches the
//!   uncached route bit for bit;
//! * (under `--features fault`) a panicking Speculative packet never
//!   poisons the cache and never stalls bucket opening for later tiers.

use std::sync::Arc;

use meander_core::{match_all_groups, ExtendConfig, GroupReport};
use meander_fleet::{
    route_fleet, warm_fleet_cache, BoardSet, Edit, EditScope, FleetConfig, FleetSession,
    ResultCache, Scheduler, Tier,
};
use meander_geom::Vector;
use meander_layout::gen::{dup_fleet_boards_small, fleet_boards_small, FleetCase};
use meander_layout::Board;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn serial_extend() -> ExtendConfig {
    ExtendConfig {
        parallel: false,
        ..Default::default()
    }
}

fn config(workers: usize, share: bool, sched: Option<Arc<Scheduler>>) -> FleetConfig {
    FleetConfig {
        extend: serial_extend(),
        workers: Some(workers),
        share_library: share,
        sched,
        ..Default::default()
    }
}

/// Routes every board of `fleet` sequentially through `match_all_groups`
/// on its materialized twin, returning the reference reports + boards.
fn sequential_reference(fleet: &FleetCase) -> (Vec<Vec<GroupReport>>, Vec<Board>) {
    let mut reports = Vec::with_capacity(fleet.boards.len());
    let mut boards = Vec::with_capacity(fleet.boards.len());
    for lb in &fleet.boards {
        let mut board = lb.to_board();
        reports.push(match_all_groups(&mut board, &serial_extend()));
        boards.push(board);
    }
    (reports, boards)
}

/// Asserts fleet output == sequential reference, bit for bit.
fn assert_identical(
    label: &str,
    set: &BoardSet,
    got: &[Vec<GroupReport>],
    want_reports: &[Vec<GroupReport>],
    want_boards: &[Board],
) {
    assert_eq!(got.len(), want_reports.len(), "{label}: board count");
    for (b, (g_board, w_board)) in got.iter().zip(want_reports).enumerate() {
        assert_eq!(g_board.len(), w_board.len(), "{label}: board {b} groups");
        for (gi, (g, w)) in g_board.iter().zip(w_board).enumerate() {
            assert_eq!(
                g.target.to_bits(),
                w.target.to_bits(),
                "{label}: board {b} group {gi} target"
            );
            assert_eq!(g.traces.len(), w.traces.len());
            for (x, y) in g.traces.iter().zip(&w.traces) {
                assert_eq!(x.id, y.id, "{label}: board {b} group {gi} order");
                assert_eq!(x.patterns, y.patterns, "{label}: board {b} {:?}", x.id);
                assert_eq!(
                    x.achieved.to_bits(),
                    y.achieved.to_bits(),
                    "{label}: board {b} {:?} achieved",
                    x.id
                );
                assert_eq!(x.initial.to_bits(), y.initial.to_bits());
                assert_eq!(x.via_msdtw, y.via_msdtw);
            }
        }
        for (id, t) in want_boards[b].traces() {
            let routed = set.boards()[b].board().trace(id).expect("routed trace");
            assert_eq!(
                t.centerline(),
                routed.centerline(),
                "{label}: board {b} trace {id:?} geometry"
            );
        }
    }
}

/// The 64-case matrix: fleet, worker count, sharing mode, AND pool
/// configuration all drawn per case — no pool shape may change a bit.
///
/// Pool configurations cycle through: no scheduler attached (the engine's
/// ephemeral per-run pool), a private [`Scheduler`] sized to the drawn
/// worker count, and one shared long-lived scheduler reused across cases
/// with its Batch tier's yield flag toggled per case (a yielded tier
/// opens lower buckets while its packets are still in flight — a pure
/// scheduling-order change).
#[test]
fn randomized_fleets_bit_identical_across_scheduler_configs() {
    let shared = Arc::new(Scheduler::new(3));
    let mut rng = StdRng::seed_from_u64(0x5C4ED);
    for case in 0..64 {
        let library_seed = rng.gen_range(0..1_000_000) as u64;
        let per_board_seed = rng.gen_range(0..1_000_000) as u64;
        let n_boards = rng.gen_range(2..5);
        let workers = rng.gen_range(1..5);
        let share = rng.gen_range(0..2) == 1;
        let pool = case % 3;
        let label = format!(
            "case {case} (lib {library_seed}, boards {per_board_seed}×{n_boards}, \
             workers {workers}, share {share}, pool {pool})"
        );

        let sched = match pool {
            0 => None,
            1 => Some(Arc::new(Scheduler::new(workers))),
            _ => {
                shared.set_yield(Tier::Batch, case % 2 == 0);
                Some(Arc::clone(&shared))
            }
        };
        let fleet = fleet_boards_small(n_boards, library_seed, per_board_seed);
        let (want_reports, want_boards) = sequential_reference(&fleet);
        let mut set = BoardSet::new(fleet.boards.clone());
        let report = route_fleet(&mut set, &config(workers, share, sched));
        assert_identical(&label, &set, &report.reports, &want_reports, &want_boards);
        assert_eq!(
            report.stats.units_run, report.stats.units,
            "{label}: every unit packet ran"
        );
    }
}

/// Interactive re-routes preempt a concurrent batch fleet on one shared
/// scheduler — at whatever preemption points the thread timing lands on —
/// and BOTH outputs stay bit-identical to their unloaded references.
/// Repeated rounds randomize the interleaving; the outputs may never
/// vary with it.
#[test]
fn interactive_preemption_points_do_not_change_output() {
    let sched = Arc::new(Scheduler::new(2));

    // Unloaded references, computed up front.
    let batch_fleet = fleet_boards_small(6, 501, 77);
    let (batch_want_reports, batch_want_boards) = sequential_reference(&batch_fleet);
    let serve_case = fleet_boards_small(3, 7, 11);

    for round in 0..4u64 {
        let label = format!("round {round}");

        // Batch tier: a fleet routes on the shared scheduler from a
        // background thread.
        let batch_cfg = config(2, true, Some(Arc::clone(&sched)));
        let mut batch_set = BoardSet::new(batch_fleet.boards.clone());
        let batch = std::thread::spawn(move || {
            let report = route_fleet(&mut batch_set, &batch_cfg);
            (batch_set, report)
        });

        // Interactive tier: the serving loop edits and re-routes on the
        // same scheduler while the batch fleet is (likely) still in
        // flight. Each reroute's packets open ahead of queued Batch work.
        let serve_cfg = config(2, true, Some(Arc::clone(&sched)));
        let mut session = FleetSession::new(BoardSet::new(serve_case.boards.clone()), &serve_cfg);
        let mut interactive_packets = 0u64;
        for k in 0..3 {
            let _ = session.apply_edit(Edit::MoveObstacle {
                scope: EditScope::Board(k % 3),
                index: k,
                by: Vector::new(0.5 + k as f64 * 0.25, 0.5),
            });
            let report = session.reroute_dirty(&serve_cfg);
            assert!(report.all_routed(), "{label}: reroute {k}");
            interactive_packets += report.stats.sched.packets[Tier::Interactive.index()];
        }

        let (batch_set, batch_report) = batch.join().expect("batch thread");
        assert_identical(
            &format!("{label}: batch under interactive load"),
            &batch_set,
            &batch_report.reports,
            &batch_want_reports,
            &batch_want_boards,
        );
        // The session equals a from-scratch route of its edited fleet.
        let mut reference = BoardSet::new(session.pristine_boards());
        let want = route_fleet(&mut reference, &config(1, true, None));
        for (b, ref_board) in reference.boards().iter().enumerate() {
            for (id, t) in ref_board.board().traces() {
                let routed = session.boards().boards()[b]
                    .board()
                    .trace(id)
                    .expect("same trace set");
                assert_eq!(
                    t.centerline(),
                    routed.centerline(),
                    "{label}: served board {b} trace {id:?}"
                );
            }
        }
        assert!(want.all_routed(), "{label}");
        assert!(
            interactive_packets > 0,
            "{label}: dirty units ran as Interactive packets"
        );
    }
}

/// The speculative producer installs only through exact cache keys: after
/// a warm-up pass, a cold fleet serves every unit from the cache and the
/// output is still bit-identical to the uncached route. A second warm-up
/// finds nothing left to do.
#[test]
fn speculative_warm_up_populates_exact_keys() {
    let sched = Arc::new(Scheduler::new(2));
    let fleet = dup_fleet_boards_small(6, 0.7, 91);
    let cache = Arc::new(ResultCache::default());
    let mut warm_cfg = config(2, true, Some(Arc::clone(&sched)));
    warm_cfg.cache = Some(Arc::clone(&cache));

    let warm = warm_fleet_cache(&BoardSet::new(fleet.boards.clone()), &warm_cfg, &cache);
    assert_eq!(warm.boards, 6);
    assert_eq!(warm.failed + warm.skipped, 0, "clean pass warms everything");
    assert_eq!(warm.already_cached + warm.warmed, warm.distinct);
    assert!(warm.warmed > 0);
    assert!(
        warm.distinct < warm.groups,
        "a dup-heavy fleet collapses to fewer distinct keys"
    );
    assert!(
        warm.sched.packets[Tier::Speculative.index()] > 0,
        "warm-up routes on the Speculative bucket"
    );

    // Cold fleet, warmed cache: every unit packet hits, and the routed
    // bytes equal the uncached reference exactly.
    let (want_reports, want_boards) = sequential_reference(&fleet);
    let mut warmed_cfg = config(3, true, None);
    warmed_cfg.cache = Some(Arc::clone(&cache));
    let mut set = BoardSet::new(fleet.boards.clone());
    let report = route_fleet(&mut set, &warmed_cfg);
    assert_eq!(report.stats.cache_misses, 0, "warm-up covered every key");
    assert_eq!(report.stats.cache_hits as usize, report.stats.units);
    assert_identical(
        "warmed cold run",
        &set,
        &report.reports,
        &want_reports,
        &want_boards,
    );

    // Idempotent: nothing left to warm.
    let again = warm_fleet_cache(&BoardSet::new(fleet.boards.clone()), &warm_cfg, &cache);
    assert_eq!(again.warmed, 0);
    assert_eq!(again.already_cached, again.distinct);
}

/// Chaos row: a Speculative packet that panics mid-warm-up never inserts
/// a poisoned entry (the incomplete group's key stays absent) and never
/// stalls bucket opening — Batch work submitted afterwards on the same
/// scheduler runs to completion, bit-identical to sequential.
#[cfg(feature = "fault")]
#[test]
fn panicking_speculative_packet_never_poisons_cache_or_stalls() {
    use meander_fleet::FaultPlan;

    let sched = Arc::new(Scheduler::new(2));
    let fleet = dup_fleet_boards_small(4, 0.0, 17);
    let cache = Arc::new(ResultCache::default());
    let mut warm_cfg = config(2, true, Some(Arc::clone(&sched)));
    warm_cfg.cache = Some(Arc::clone(&cache));
    // Unit 0 of the warm-up's own input order: the first representative
    // group panics on every attempt.
    warm_cfg.fault = FaultPlan::new().panic_at_unit(0);

    let warm = warm_fleet_cache(&BoardSet::new(fleet.boards.clone()), &warm_cfg, &cache);
    assert_eq!(warm.failed, 1, "exactly the faulted group fails");
    assert_eq!(warm.warmed, warm.distinct - 1, "the rest warm normally");
    let entries_after_warm = cache.len();
    assert_eq!(
        entries_after_warm, warm.warmed,
        "no entry for the crashed group"
    );

    // The scheduler survives and lower→higher bucket transitions are not
    // stalled: a Batch fleet (no faults) on the same pool completes, the
    // missing entry routes fresh, and the output matches sequential.
    let (want_reports, want_boards) = sequential_reference(&fleet);
    let mut fleet_cfg = config(2, true, Some(Arc::clone(&sched)));
    fleet_cfg.cache = Some(Arc::clone(&cache));
    let mut set = BoardSet::new(fleet.boards.clone());
    let report = route_fleet(&mut set, &fleet_cfg);
    assert!(report.all_routed(), "{}", report.summary());
    assert!(
        report.stats.cache_misses > 0,
        "the unpoisoned group routed fresh"
    );
    assert_identical(
        "post-chaos batch",
        &set,
        &report.reports,
        &want_reports,
        &want_boards,
    );
    assert!(cache.len() > entries_after_warm, "the fresh group inserted");
}
