//! Delta-debugging repro minimization for quarantined boards.
//!
//! A board that panics across every rung of the recovery ladder is a
//! *poison board*: the single most valuable artifact it can leave behind
//! is the **smallest** board that still crashes, because a 3-entity repro
//! gets read and fixed while a 300-entity one gets filed and forgotten.
//!
//! [`minimize`] is a classic ddmin-style reducer specialized to
//! [`LibraryBoard`]s. It walks the board's entity classes — library
//! obstacles, board-local obstacles, differential pairs, matching groups,
//! traces — and for each tries dropping contiguous chunks, halving the
//! chunk size bisection-style, keeping any candidate for which the
//! caller's failing closure still fails. The closure decides what
//! "fails" means (the resilience layer re-routes the candidate through
//! the engine, whose per-job `catch_unwind` converts a panic into
//! [`crate::BoardOutcome::Failed`]); the reducer only supplies candidate
//! boards and takes whatever verdicts come back, so it works unchanged
//! for real router panics and injected chaos faults alike.
//!
//! Dropping a trace renumbers everything downstream of it, so candidates
//! are **rebuilt, not mutated**: traces re-add in kept order (fresh
//! [`TraceId`]s), group members remap through the kept set (groups left
//! empty are dropped — a candidate must stay *valid*, or the probe would
//! report a rejection instead of reproducing the crash), pairs survive
//! only if both ends do, and per-trace routable areas follow their
//! traces. The reduced board is serialized via [`meander_layout::io`]
//! (`save_board` of its materialized twin) so a bug report carries a
//! loadable text artifact, not a debug dump.
//!
//! Everything here is deterministic: candidate order is a pure function
//! of the board's entity counts, so the same poison board minimizes to
//! the same repro on every run, worker count, and sharing mode.

use meander_layout::io::save_board;
use meander_layout::{
    Board, DiffPair, LibraryBoard, MatchGroup, ObstacleLibrary, TargetLength, TraceId,
};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

/// The smallest still-failing board [`minimize`] found, with its audit
/// trail.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    /// The reduced board (still fails the caller's closure).
    pub board: LibraryBoard,
    /// Entity count of the original board (traces + obstacles, library
    /// and local, + groups + pairs).
    pub original_entities: usize,
    /// Entity count of the reduced board.
    pub entities: usize,
    /// Failing-closure invocations spent.
    pub probes: usize,
    /// The reduced board's materialized twin in the `layout::io` text
    /// format (`None` only if serialization failed, e.g. a whitespace
    /// name).
    pub text: Option<String>,
}

/// Total entity count of a board: library obstacles + local obstacles +
/// traces + groups + pairs. The quantity minimization shrinks.
pub fn entity_count(lb: &LibraryBoard) -> usize {
    lb.library().len()
        + lb.board().obstacles().len()
        + lb.board().trace_count()
        + lb.board().groups().len()
        + lb.board().pairs().len()
}

/// One droppable entity class of a [`LibraryBoard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    LibraryObstacle,
    LocalObstacle,
    Pair,
    Group,
    Trace,
}

/// All classes, in the order passes run: cheap bulk (obstacles) first,
/// structure (pairs/groups/traces) last — big boards shed their obstacle
/// fields before any id remapping happens.
const CLASSES: [Class; 5] = [
    Class::LibraryObstacle,
    Class::LocalObstacle,
    Class::Pair,
    Class::Group,
    Class::Trace,
];

fn class_len(lb: &LibraryBoard, class: Class) -> usize {
    match class {
        Class::LibraryObstacle => lb.library().len(),
        Class::LocalObstacle => lb.board().obstacles().len(),
        Class::Pair => lb.board().pairs().len(),
        Class::Group => lb.board().groups().len(),
        Class::Trace => lb.board().trace_count(),
    }
}

/// Shrinks `board` to a minimal still-failing repro: `still_fails` must
/// return `true` for the original (callers should verify before paying
/// for minimization) and is re-invoked on every candidate; the reduction
/// keeps exactly the candidates that still fail. Spends at most
/// `max_probes` closure invocations, so a pathological predicate can't
/// turn triage into a bisection marathon — the result is then simply the
/// smallest repro found so far.
pub fn minimize<F>(board: &LibraryBoard, mut still_fails: F, max_probes: usize) -> MinimizedRepro
where
    F: FnMut(&LibraryBoard) -> bool,
{
    let original_entities = entity_count(board);
    let mut current = board.clone();
    let mut probes = 0usize;
    // Passes over all classes until a full pass removes nothing (a local
    // fixed point): dropping traces can orphan a group, which only a
    // later group pass can then remove.
    loop {
        let before = entity_count(&current);
        for class in CLASSES {
            current = shrink_class(current, class, &mut still_fails, &mut probes, max_probes);
        }
        if entity_count(&current) == before || probes >= max_probes {
            break;
        }
    }
    MinimizedRepro {
        original_entities,
        entities: entity_count(&current),
        probes,
        text: save_board(&current.to_board()).ok(),
        board: current,
    }
}

/// ddmin over one entity class: try dropping contiguous chunks, halving
/// the chunk on a fruitless sweep, restarting the sweep on success.
fn shrink_class<F>(
    mut cur: LibraryBoard,
    class: Class,
    still_fails: &mut F,
    probes: &mut usize,
    max_probes: usize,
) -> LibraryBoard
where
    F: FnMut(&LibraryBoard) -> bool,
{
    let n = class_len(&cur, class);
    if n == 0 {
        return cur;
    }
    let mut chunk = n.div_ceil(2);
    'sweep: while chunk >= 1 {
        let n = class_len(&cur, class);
        let mut start = 0;
        while start < n {
            if *probes >= max_probes {
                return cur;
            }
            let end = (start + chunk).min(n);
            let candidate = drop_range(&cur, class, start..end);
            *probes += 1;
            if still_fails(&candidate) {
                cur = candidate;
                // Same chunk size, fresh sweep over the smaller board.
                continue 'sweep;
            }
            start = end;
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    cur
}

/// `lb` with `class` items in `drop` removed, rebuilt consistently (see
/// module docs for the remapping rules).
fn drop_range(lb: &LibraryBoard, class: Class, drop: Range<usize>) -> LibraryBoard {
    let keep = |c: Class, i: usize| c != class || !drop.contains(&i);
    rebuild(lb, &keep)
}

/// Rebuilds a [`LibraryBoard`] keeping exactly the entities `keep`
/// approves, remapping trace ids and pruning references that dangle.
fn rebuild(lb: &LibraryBoard, keep: &dyn Fn(Class, usize) -> bool) -> LibraryBoard {
    let library = ObstacleLibrary::new(
        lb.library()
            .obstacles()
            .iter()
            .enumerate()
            .filter(|(i, _)| keep(Class::LibraryObstacle, *i))
            .map(|(_, o)| o.clone())
            .collect(),
    );
    let src = lb.board();
    let mut board = match src.outline() {
        Some(o) => Board::new(o),
        None => Board::default(),
    };
    // Traces re-add in kept order; ids are assigned fresh, so record the
    // old→new mapping for groups, pairs, and areas.
    let mut remap: BTreeMap<u32, TraceId> = BTreeMap::new();
    for (pos, (id, t)) in src.traces().enumerate() {
        if keep(Class::Trace, pos) {
            let nid = board.add_trace(t.clone());
            remap.insert(id.0, nid);
        }
    }
    for (pos, o) in src.obstacles().iter().enumerate() {
        if keep(Class::LocalObstacle, pos) {
            board.add_obstacle(o.clone());
        }
    }
    for (id, _) in src.traces() {
        if let (Some(&nid), Some(area)) = (remap.get(&id.0), src.area(id)) {
            board.set_area(nid, area.clone());
        }
    }
    for a in src.rule_areas() {
        board.add_rule_area(a.clone());
    }
    for (pos, g) in src.groups().iter().enumerate() {
        if !keep(Class::Group, pos) {
            continue;
        }
        let members: Vec<TraceId> = g
            .members()
            .iter()
            .filter_map(|m| remap.get(&m.0).copied())
            .collect();
        if members.is_empty() {
            // An empty group would fail validation — the candidate must
            // stay routable input, or probes measure the wrong failure.
            continue;
        }
        let mut ng = match g.target() {
            TargetLength::Explicit(t) => MatchGroup::with_target(g.name(), members, t),
            TargetLength::LongestMember => MatchGroup::new(g.name(), members),
        };
        ng.set_tolerance(g.tolerance());
        board.add_group(ng);
    }
    for (pos, p) in src.pairs().iter().enumerate() {
        if !keep(Class::Pair, pos) {
            continue;
        }
        if let (Some(&np), Some(&nn)) = (remap.get(&p.p().0), remap.get(&p.n().0)) {
            let mut npair = DiffPair::new(p.name(), np, nn, p.sep());
            npair.set_breakout_nodes(p.breakout_nodes());
            board.add_pair(npair);
        }
    }
    LibraryBoard::new(Arc::new(library), board)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_layout::gen::fleet_boards_small;
    use meander_layout::io::load_board;
    use meander_layout::validate_board;

    fn sample_board() -> LibraryBoard {
        fleet_boards_small(1, 5, 9).boards.remove(0)
    }

    #[test]
    fn entity_count_covers_all_classes() {
        let lb = sample_board();
        let n = entity_count(&lb);
        assert_eq!(
            n,
            lb.library().len()
                + lb.board().obstacles().len()
                + lb.board().trace_count()
                + lb.board().groups().len()
                + lb.board().pairs().len()
        );
        assert!(n > 4, "generator board should be non-trivial: {n}");
    }

    /// Predicate "has at least one trace in a group" minimizes to exactly
    /// one trace and one group, everything else dropped — the degenerate
    /// fault every injected-panic quarantine reduces to.
    #[test]
    fn minimizes_to_one_routable_unit() {
        let lb = sample_board();
        let fails = |cand: &LibraryBoard| {
            cand.board()
                .groups()
                .iter()
                .any(|g| !g.members().is_empty())
        };
        let min = minimize(&lb, fails, 10_000);
        assert!(fails(&min.board), "result must still fail");
        assert_eq!(min.board.library().len(), 0);
        assert_eq!(min.board.board().obstacles().len(), 0);
        assert_eq!(min.board.board().groups().len(), 1);
        assert_eq!(min.board.board().trace_count(), 1);
        assert_eq!(min.entities, 2);
        assert!(min.probes > 0 && min.original_entities > min.entities);
        // The reduced board is valid and its serialized twin round-trips.
        validate_board(min.board.board()).expect("reduced board stays valid");
        let text = min.text.as_deref().expect("serializes");
        let loaded = load_board(text).expect("round-trips");
        assert_eq!(loaded.trace_count(), 1);
    }

    /// The reducer never drops entities the predicate pins: requiring a
    /// specific trace's name keeps that trace (and a group containing
    /// it, if the predicate demands routability).
    #[test]
    fn pinned_entities_survive() {
        let lb = sample_board();
        let pinned = lb
            .board()
            .traces()
            .nth(1)
            .map(|(_, t)| t.name().to_string())
            .expect("board has 2+ traces");
        let fails = |cand: &LibraryBoard| {
            cand.board()
                .traces()
                .any(|(_, t)| t.name() == pinned.as_str())
        };
        let min = minimize(&lb, fails, 10_000);
        assert_eq!(min.board.board().trace_count(), 1);
        let kept = min
            .board
            .board()
            .traces()
            .next()
            .map(|(_, t)| t.name().to_string());
        assert_eq!(kept.as_deref(), Some(pinned.as_str()));
    }

    /// The probe budget is a hard cap: with 0 probes the original comes
    /// back untouched.
    #[test]
    fn probe_budget_caps_work() {
        let lb = sample_board();
        let min = minimize(&lb, |_| true, 0);
        assert_eq!(min.probes, 0);
        assert_eq!(min.entities, min.original_entities);
        // A tiny budget makes *some* progress but respects the cap.
        let min = minimize(&lb, |_| true, 7);
        assert!(min.probes <= 7);
        assert!(min.entities <= min.original_entities);
    }

    /// Rebuild keeps group/pair references consistent after trace drops:
    /// a never-failing predicate means every candidate is rejected, so
    /// the reducer must still terminate with the original board.
    #[test]
    fn unreproducible_failure_returns_original() {
        let lb = sample_board();
        let min = minimize(&lb, |_| false, 10_000);
        assert_eq!(min.entities, min.original_entities);
        assert_eq!(min.board.board().trace_count(), lb.board().trace_count());
    }
}
