//! Outcome-driven resilience over [`route_fleet`]: retry ladder,
//! graceful degradation, overload shedding, and poison-board quarantine.
//!
//! PR 6 made failure *visible* — every board comes back with a
//! [`BoardOutcome`] — but the fleet still gave up on first failure. A
//! serving system must instead **recover**: retry what was transient,
//! degrade what was expensive, shed what doesn't fit, and quarantine
//! what keeps crashing. [`route_fleet_resilient`] layers exactly that
//! over the engine, deterministically:
//!
//! * **Admission** ([`AdmissionPolicy`]) — before anything runs, boards
//!   are admitted first-fit in input order against a global in-flight
//!   unit budget; boards over budget come back
//!   [`BoardOutcome::Shed`]`(`[`ShedReason::Admission`]`)` — refused
//!   loudly, never dropped silently. Admission is decided from the plan
//!   alone, so the shed set is invariant across worker counts.
//! * **Retry ladder** ([`RetryPolicy::ladder`]) — boards whose first
//!   attempt failed (panic) or blew a deadline re-run one rung at a
//!   time: [`DegradeStep::Retry`] (same knobs — recovers transients),
//!   then progressively cheaper, long-proven engine shapes
//!   ([`DegradeStep::Scalar`], [`DegradeStep::Simple`],
//!   [`DegradeStep::Reference`] — see [`meander_core::EngineFallback`])
//!   with a widening per-board budget multiplier. A board recovered at
//!   rung `s` reports [`BoardOutcome::Degraded`]` { step: s, attempts }`.
//!   First-attempt routed boards are never re-run — their geometry stays
//!   bit-identical to sequential, untouched by any retry.
//! * **Retry token bucket** ([`AdmissionPolicy::retry_tokens`]) — every
//!   re-run spends one fleet-wide token, so a fleet of poison boards can
//!   never multiply its own load unboundedly or starve fresh work; a
//!   board denied a token is shed as [`ShedReason::RetryTokens`] (its
//!   failed attempts stay in the journal).
//! * **Journal** ([`AttemptJournal`]) — every attempt of every board is
//!   recorded as (attempt, step, outcome, busy time), so triage never
//!   has to re-run the fleet to find out what was tried.
//! * **Quarantine** ([`Quarantine`]) — boards that panic across *every*
//!   rung are reported with their final [`JobError`] and, by default, a
//!   delta-debugged minimal repro ([`crate::repro::minimize`]) that
//!   still crashes the probe — serialized via `layout::io` for a bug
//!   report.
//!
//! ## Determinism
//!
//! Every decision above is a pure function of input order and per-run
//! outcomes: admission is first-fit over the input sequence, retries are
//! scheduled rung-major in board order, tokens are spent in that same
//! order, and the engine itself is deterministic per attempt. Under the
//! `fault` harness, injected faults key on input-order indices and
//! retries re-run with plans `FaultPlan::rebased` onto
//! the board's own span — so the full outcome vector (including which
//! rung recovered a board and which boards shed) is invariant across
//! worker counts 1–N and both sharing modes (property-tested in
//! `tests/resilience.rs`).
//!
//! ```
//! use meander_fleet::{route_fleet_resilient, BoardSet, FleetConfig, RetryPolicy};
//! use meander_layout::gen::fleet_boards_small;
//!
//! let mut set = BoardSet::new(fleet_boards_small(3, 7, 11).boards);
//! let resilient =
//!     route_fleet_resilient(&mut set, &FleetConfig::default(), &RetryPolicy::default());
//! // Healthy fleet: nothing retried, nothing shed, nothing quarantined.
//! assert!(resilient.report.all_routed());
//! assert_eq!(resilient.report.stats.retries, 0);
//! assert!(resilient.quarantine.entries.is_empty());
//! println!("{}", resilient.report.summary());
//! ```

use crate::engine::{route_fleet, BoardSet, FleetConfig, FleetReport};
#[cfg(feature = "fault")]
use crate::fault::FaultPlan;
use crate::outcome::{BoardOutcome, DegradeStep, JobError, ShedReason};
use crate::repro::{minimize, MinimizedRepro};
use meander_core::{plan_board_units, EngineFallback, ExtendConfig, GroupReport};
use meander_layout::{Board, LibraryBoard, ObstacleLibrary};
use std::sync::Arc;
use std::time::Duration;

/// A board's slice of the first run's input-order numbering:
/// `((unit_base, unit_len), (job_base, job_len))`, `None` for boards the
/// engine never numbered (not admitted, or rejected).
#[cfg(feature = "fault")]
type FaultSpan = Option<((u64, u64), (u64, u64))>;

impl DegradeStep {
    /// The engine configuration this rung re-runs with, derived from the
    /// fleet's own: [`DegradeStep::Retry`] keeps the knobs, the rest map
    /// onto [`ExtendConfig::fallback`] levels.
    pub fn apply(self, base: &ExtendConfig) -> ExtendConfig {
        match self {
            DegradeStep::Retry => base.clone(),
            DegradeStep::Scalar => base.fallback(EngineFallback::Scalar),
            DegradeStep::Simple => base.fallback(EngineFallback::Simple),
            DegradeStep::Reference => base.fallback(EngineFallback::Reference),
        }
    }

    /// Multiplier applied to [`FleetConfig::board_budget`] on this rung:
    /// deeper rungs run simpler-but-slower engine shapes, so a board that
    /// blew its budget gets proportionally more headroom instead of
    /// re-failing for the same reason.
    pub fn budget_multiplier(self) -> u32 {
        match self {
            DegradeStep::Retry => 1,
            DegradeStep::Scalar => 2,
            DegradeStep::Simple => 4,
            DegradeStep::Reference => 8,
        }
    }
}

/// Overload control: the two budgets that keep a fleet from amplifying
/// its own failures.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Global in-flight unit budget. Boards are admitted first-fit in
    /// input order while their planned units fit; the rest are
    /// [`BoardOutcome::Shed`]`(`[`ShedReason::Admission`]`)`. `None`
    /// admits everything.
    pub max_units: Option<usize>,
    /// Fleet-wide retry token bucket: every board re-run (any rung)
    /// spends one token. An empty bucket sheds the would-be retry as
    /// [`ShedReason::RetryTokens`] — retries can never starve fresh
    /// boards of a later run's budget.
    pub retry_tokens: u64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_units: None,
            retry_tokens: 64,
        }
    }
}

/// The recovery policy: how hard, and how, to try again.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// The degradation ladder, tried in order after a failed first
    /// attempt; its length bounds retries per board. The default walks
    /// [`DegradeStep::Retry`] → [`DegradeStep::Scalar`] →
    /// [`DegradeStep::Simple`] → [`DegradeStep::Reference`].
    pub ladder: Vec<DegradeStep>,
    /// Overload budgets (admission units + retry tokens).
    pub admission: AdmissionPolicy,
    /// Delta-debug a minimal still-crashing repro for every quarantined
    /// board (on by default; costs [`RetryPolicy::max_minimize_probes`]
    /// single-board probe runs at worst).
    pub minimize_repros: bool,
    /// Probe budget per quarantined board for repro minimization.
    pub max_minimize_probes: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ladder: vec![
                DegradeStep::Retry,
                DegradeStep::Scalar,
                DegradeStep::Simple,
                DegradeStep::Reference,
            ],
            admission: AdmissionPolicy::default(),
            minimize_repros: true,
            max_minimize_probes: 256,
        }
    }
}

/// One attempt of one board, as the journal records it.
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Attempt number (0 = the first run).
    pub attempt: u32,
    /// The ladder rung this attempt ran with (`None` for the first run).
    pub step: Option<DegradeStep>,
    /// What the attempt itself returned (before any relabeling to
    /// [`BoardOutcome::Degraded`] / [`BoardOutcome::Shed`]).
    pub outcome: BoardOutcome,
    /// Busy time the attempt charged to this board.
    pub busy: Duration,
}

/// Every attempt run for one board, in order. Boards shed at admission
/// have an empty attempt list — they never ran.
#[derive(Debug, Clone)]
pub struct AttemptJournal {
    /// Board index (submission order).
    pub board: usize,
    /// The attempts, first run included.
    pub attempts: Vec<AttemptRecord>,
}

/// One poison board: it panicked on its first attempt and on every rung
/// of the ladder.
#[derive(Debug)]
pub struct QuarantineEntry {
    /// Board index (submission order).
    pub board: usize,
    /// The final attempt's panic provenance.
    pub error: JobError,
    /// Total attempts run (first + retries).
    pub attempts: u32,
    /// Minimal still-crashing repro (present when
    /// [`RetryPolicy::minimize_repros`] is on and the failure reproduced
    /// under the single-board probe).
    pub repro: Option<MinimizedRepro>,
    /// The fault plan the quarantine probe ran with (this board's slice
    /// of the run's plan, rebased to a one-board fleet at attempt 0) —
    /// lets a test or a bug report re-fire the exact injected failure
    /// against the minimized board.
    #[cfg(feature = "fault")]
    pub probe_plan: FaultPlan,
}

/// The poison-board report of one resilient run.
#[derive(Debug, Default)]
pub struct Quarantine {
    /// One entry per board that failed every rung.
    pub entries: Vec<QuarantineEntry>,
}

impl Quarantine {
    /// `true` when no board was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A resilient run's full result: the merged fleet report (final
/// outcomes), the per-board attempt journals, and the quarantine.
#[must_use = "the resilient report carries final outcomes, journals, and quarantined poison boards"]
#[derive(Debug)]
pub struct ResilientReport {
    /// Final per-board outcomes/reports/stats. `reports[b]` holds group
    /// reports for [`BoardOutcome::Routed`] *and*
    /// [`BoardOutcome::Degraded`] boards (from the recovering attempt).
    /// `stats.units`/`stats.jobs` describe the admitted first-attempt
    /// plan; retry work accumulates into `units_run`, `route_wall`,
    /// `retries`, and `board_busy`.
    pub report: FleetReport,
    /// `journals[b]` records every attempt board `b` ran.
    pub journals: Vec<AttemptJournal>,
    /// Boards that panicked on every rung, with minimized repros.
    pub quarantine: Quarantine,
}

/// `true` for outcomes the ladder may re-run: panics and blown
/// deadlines/budgets. Rejections (input is wrong), cancellations (caller
/// intent), and shed boards (overload) are final.
fn retryable(o: &BoardOutcome) -> bool {
    matches!(o, BoardOutcome::Failed(_) | BoardOutcome::DeadlineExceeded)
}

/// An inert stand-in used to move boards out of a set without cloning.
fn placeholder() -> LibraryBoard {
    LibraryBoard::new(Arc::new(ObstacleLibrary::default()), Board::default())
}

/// Routes exactly the boards `idx` of `set` as one fleet run. Boards move
/// out and back (no clones); the report is indexed by position in `idx`.
fn route_subset(set: &mut BoardSet, idx: &[usize], config: &FleetConfig) -> FleetReport {
    let mut sub_boards = Vec::with_capacity(idx.len());
    for &b in idx {
        sub_boards.push(std::mem::replace(&mut set.boards_mut()[b], placeholder()));
    }
    let mut sub = BoardSet::new(sub_boards);
    let report = route_fleet(&mut sub, config);
    for (slot, &b) in idx.iter().enumerate() {
        set.boards_mut()[b] = std::mem::replace(&mut sub.boards_mut()[slot], placeholder());
    }
    report
}

/// The fleet config a ladder rung re-runs with: the rung's engine shape
/// and a widened per-board budget. Deadline and cancellation carry over
/// unchanged — a fired token or an already-spent fleet deadline still
/// stops retries.
fn step_config(base: &FleetConfig, step: DegradeStep) -> FleetConfig {
    let mut c = base.clone();
    c.extend = step.apply(&base.extend);
    if let Some(b) = base.board_budget {
        c.board_budget = Some(b.saturating_mul(step.budget_multiplier()));
    }
    c
}

/// `true` when routing `cand` alone under `config` fails with a panic —
/// the quarantine probe. The engine's per-job `catch_unwind` is the
/// "failing closure under catch_unwind": a crash becomes
/// [`BoardOutcome::Failed`] and the probe process survives.
fn probe_fails(config: &FleetConfig, cand: &LibraryBoard) -> bool {
    let mut s = BoardSet::new(vec![cand.clone()]);
    let r = route_fleet(&mut s, config);
    matches!(r.outcomes.first(), Some(BoardOutcome::Failed(_)))
}

/// Routes `set` under `config` with recovery: admission shedding, the
/// retry/degrade ladder, retry tokens, journals, and quarantine with
/// minimized repros. See the [module docs](self) for the policy model and
/// the determinism argument.
///
/// First-attempt routed boards are bit-identical to sequential (they are
/// never re-run); [`BoardOutcome::Degraded`] boards hold the recovering
/// rung's results (bit-identical too, except the `Reference` rung);
/// everything else keeps its input geometry.
pub fn route_fleet_resilient(
    set: &mut BoardSet,
    config: &FleetConfig,
    policy: &RetryPolicy,
) -> ResilientReport {
    let n = set.len();

    // ---- Plan shapes: (units, jobs) per board, for admission and fault
    // rebasing. Same `plan_board_units` the engine runs, so the counts
    // agree with its input-order unit/job numbering.
    let shapes: Vec<(usize, usize)> = set
        .boards()
        .iter()
        .map(|lb| {
            let planned = plan_board_units(lb.board());
            (
                planned.iter().map(|(_, units)| units.len()).sum(),
                planned.len(),
            )
        })
        .collect();

    // ---- Admission: first-fit in input order under the unit budget. ----
    let mut admitted = vec![true; n];
    if let Some(budget) = policy.admission.max_units {
        let mut in_flight = 0usize;
        for b in 0..n {
            if in_flight + shapes[b].0 <= budget {
                in_flight += shapes[b].0;
            } else {
                admitted[b] = false;
            }
        }
    }
    let admitted_idx: Vec<usize> = (0..n).filter(|&b| admitted[b]).collect();

    // ---- Attempt 0: one fleet run over the admitted boards. -------------
    let round0 = route_subset(set, &admitted_idx, config);

    let mut journals: Vec<AttemptJournal> = (0..n)
        .map(|board| AttemptJournal {
            board,
            attempts: Vec::new(),
        })
        .collect();
    let mut outcomes: Vec<BoardOutcome> = vec![BoardOutcome::Shed(ShedReason::Admission); n];
    let mut reports: Vec<Vec<GroupReport>> = vec![Vec::new(); n];
    let mut board_busy = vec![Duration::ZERO; n];
    let mut stats = round0.stats.clone();
    for ((slot, &b), report) in admitted_idx.iter().enumerate().zip(round0.reports) {
        outcomes[b] = round0.outcomes[slot].clone();
        reports[b] = report;
        board_busy[b] = round0.stats.board_busy[slot];
        journals[b].attempts.push(AttemptRecord {
            attempt: 0,
            step: None,
            outcome: outcomes[b].clone(),
            busy: board_busy[b],
        });
    }

    // ---- Fault rebasing spans: each admitted, non-rejected board's slice
    // of the first run's input-order unit/job numbering (rejected boards
    // plan nothing — mirror the engine exactly).
    #[cfg(feature = "fault")]
    let spans: Vec<FaultSpan> = {
        let mut unit_base = 0u64;
        let mut job_base = 0u64;
        let mut spans = vec![None; n];
        for &b in &admitted_idx {
            if matches!(outcomes[b], BoardOutcome::Rejected(_)) {
                continue;
            }
            let (units, jobs) = shapes[b];
            spans[b] = Some(((unit_base, units as u64), (job_base, jobs as u64)));
            unit_base += units as u64;
            job_base += jobs as u64;
        }
        spans
    };

    // ---- The ladder: rung-major, board order — token spend is a pure
    // function of the (deterministic) outcome sequence.
    let mut tokens = policy.admission.retry_tokens;
    let mut retries = 0u64;
    for (rung, &step) in policy.ladder.iter().enumerate() {
        let attempt = rung as u32 + 1;
        let retry_now: Vec<usize> = (0..n).filter(|&b| retryable(&outcomes[b])).collect();
        if retry_now.is_empty() {
            break;
        }
        for b in retry_now {
            if tokens == 0 {
                outcomes[b] = BoardOutcome::Shed(ShedReason::RetryTokens);
                continue;
            }
            tokens -= 1;
            retries += 1;
            #[cfg_attr(not(feature = "fault"), allow(unused_mut))]
            let mut sub_config = step_config(config, step);
            #[cfg(feature = "fault")]
            {
                sub_config.fault = match spans[b] {
                    Some((units, jobs)) => config.fault.rebased(units, jobs, attempt),
                    None => FaultPlan {
                        attempt,
                        ..FaultPlan::default()
                    },
                };
            }
            let attempt_report = route_subset(set, &[b], &sub_config);
            stats.route_wall += attempt_report.stats.route_wall;
            stats.units_run += attempt_report.stats.units_run;
            let busy = attempt_report
                .stats
                .board_busy
                .first()
                .copied()
                .unwrap_or_default();
            board_busy[b] += busy;
            let attempt_outcome = attempt_report
                .outcomes
                .into_iter()
                .next()
                .expect("single-board run returns one outcome");
            journals[b].attempts.push(AttemptRecord {
                attempt,
                step: Some(step),
                outcome: attempt_outcome.clone(),
                busy,
            });
            if attempt_outcome.is_routed() {
                outcomes[b] = BoardOutcome::Degraded {
                    step,
                    attempts: attempt + 1,
                };
                reports[b] = attempt_report
                    .reports
                    .into_iter()
                    .next()
                    .expect("single-board run returns one report");
            } else {
                outcomes[b] = attempt_outcome;
            }
        }
    }

    // ---- Quarantine: boards still panicking after the whole ladder. -----
    let mut quarantine = Quarantine::default();
    for b in 0..n {
        let BoardOutcome::Failed(error) = &outcomes[b] else {
            continue;
        };
        #[cfg(feature = "fault")]
        let probe_plan = match spans[b] {
            Some((units, jobs)) => config.fault.rebased(units, jobs, 0),
            None => FaultPlan::default(),
        };
        let mut probe_cfg = config.clone();
        probe_cfg.workers = Some(1);
        probe_cfg.deadline = None;
        probe_cfg.cancel = None;
        #[cfg(feature = "fault")]
        {
            probe_cfg.fault = probe_plan.clone();
        }
        let repro = if policy.minimize_repros && probe_fails(&probe_cfg, &set.boards()[b]) {
            Some(minimize(
                &set.boards()[b],
                |cand| probe_fails(&probe_cfg, cand),
                policy.max_minimize_probes,
            ))
        } else {
            None
        };
        quarantine.entries.push(QuarantineEntry {
            board: b,
            error: error.clone(),
            attempts: journals[b].attempts.len() as u32,
            repro,
            #[cfg(feature = "fault")]
            probe_plan,
        });
    }

    // ---- Final stats: recount from the merged outcome vector. -----------
    let count = |pred: fn(&BoardOutcome) -> bool| outcomes.iter().filter(|o| pred(o)).count();
    stats.boards = n;
    stats.routed = count(BoardOutcome::is_routed);
    stats.rejected = count(|o| matches!(o, BoardOutcome::Rejected(_)));
    stats.failed = count(|o| matches!(o, BoardOutcome::Failed(_)));
    stats.cancelled = count(|o| matches!(o, BoardOutcome::Cancelled));
    stats.deadline_exceeded = count(|o| matches!(o, BoardOutcome::DeadlineExceeded));
    stats.degraded = count(|o| matches!(o, BoardOutcome::Degraded { .. }));
    stats.shed = count(|o| matches!(o, BoardOutcome::Shed(_)));
    stats.retries = retries;
    stats.board_busy = board_busy;

    ResilientReport {
        report: FleetReport {
            reports,
            outcomes,
            stats,
        },
        journals,
        quarantine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_layout::gen::fleet_boards_small;

    fn serial_config(workers: usize) -> FleetConfig {
        FleetConfig {
            extend: ExtendConfig {
                parallel: false,
                ..Default::default()
            },
            workers: Some(workers),
            ..Default::default()
        }
    }

    #[test]
    fn healthy_fleet_needs_no_recovery() {
        let fleet = fleet_boards_small(4, 21, 42);
        let mut plain_set = BoardSet::new(fleet.boards.clone());
        let plain = route_fleet(&mut plain_set, &serial_config(2));
        let mut set = BoardSet::new(fleet.boards);
        let resilient = route_fleet_resilient(&mut set, &serial_config(2), &RetryPolicy::default());
        assert_eq!(resilient.report.outcomes, plain.outcomes);
        assert_eq!(resilient.report.stats.retries, 0);
        assert_eq!(resilient.report.stats.degraded, 0);
        assert_eq!(resilient.report.stats.shed, 0);
        assert!(resilient.quarantine.is_empty());
        // Journals: exactly one attempt per board, step None.
        for j in &resilient.journals {
            assert_eq!(j.attempts.len(), 1);
            assert_eq!(j.attempts[0].attempt, 0);
            assert!(j.attempts[0].step.is_none());
            assert!(j.attempts[0].outcome.is_routed());
        }
        // Geometry identical to the plain fleet run.
        for (a, b) in plain_set.boards().iter().zip(set.boards()) {
            for ((_, ta), (_, tb)) in a.board().traces().zip(b.board().traces()) {
                assert_eq!(ta.centerline(), tb.centerline());
            }
        }
        let line = resilient.report.summary();
        assert!(
            line.contains("routed=4") && line.contains("shed=0"),
            "{line}"
        );
    }

    #[test]
    fn zero_unit_budget_sheds_every_board() {
        let fleet = fleet_boards_small(3, 7, 11);
        let before: Vec<usize> = fleet
            .boards
            .iter()
            .map(|lb| {
                lb.board()
                    .traces()
                    .map(|(_, t)| t.centerline().point_count())
                    .sum()
            })
            .collect();
        let mut set = BoardSet::new(fleet.boards);
        let policy = RetryPolicy {
            admission: AdmissionPolicy {
                max_units: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        let resilient = route_fleet_resilient(&mut set, &serial_config(2), &policy);
        assert!(resilient
            .report
            .outcomes
            .iter()
            .all(|o| matches!(o, BoardOutcome::Shed(ShedReason::Admission))));
        assert_eq!(resilient.report.stats.shed, 3);
        assert_eq!(resilient.report.stats.retries, 0);
        // Shed boards never ran: empty journals, untouched geometry.
        assert!(resilient.journals.iter().all(|j| j.attempts.is_empty()));
        for (lb, &points) in set.boards().iter().zip(&before) {
            let now: usize = lb
                .board()
                .traces()
                .map(|(_, t)| t.centerline().point_count())
                .sum();
            assert_eq!(now, points);
        }
    }

    #[test]
    fn admission_is_first_fit_in_input_order() {
        let fleet = fleet_boards_small(3, 7, 11);
        let units_of = |lb: &LibraryBoard| -> usize {
            plan_board_units(lb.board())
                .iter()
                .map(|(_, u)| u.len())
                .sum()
        };
        let budget = units_of(&fleet.boards[0]);
        assert!(budget > 0);
        let mut set = BoardSet::new(fleet.boards);
        let policy = RetryPolicy {
            admission: AdmissionPolicy {
                max_units: Some(budget),
                ..Default::default()
            },
            ..Default::default()
        };
        let resilient = route_fleet_resilient(&mut set, &serial_config(2), &policy);
        assert!(resilient.report.outcomes[0].is_routed());
        assert!(matches!(
            resilient.report.outcomes[1],
            BoardOutcome::Shed(ShedReason::Admission)
        ));
        assert!(matches!(
            resilient.report.outcomes[2],
            BoardOutcome::Shed(ShedReason::Admission)
        ));
        assert_eq!(resilient.report.stats.routed, 1);
        assert_eq!(resilient.report.stats.shed, 2);
    }

    #[test]
    fn degrade_steps_map_to_fallback_levels() {
        let base = ExtendConfig::default();
        let retry = DegradeStep::Retry.apply(&base);
        assert_eq!(retry.batch_kernels, base.batch_kernels);
        assert_eq!(retry.dp_profile, base.dp_profile);
        let scalar = DegradeStep::Scalar.apply(&base);
        assert!(!scalar.batch_kernels && scalar.dp_profile);
        let simple = DegradeStep::Simple.apply(&base);
        assert!(!simple.dp_profile && simple.incremental);
        let reference = DegradeStep::Reference.apply(&base);
        assert!(!reference.incremental);
        // Budget multipliers widen monotonically down the ladder.
        let ladder = RetryPolicy::default().ladder;
        let mults: Vec<u32> = ladder.iter().map(|s| s.budget_multiplier()).collect();
        assert_eq!(mults, vec![1, 2, 4, 8]);
        // And the widened budget reaches the rung's config.
        let cfg = FleetConfig {
            board_budget: Some(Duration::from_millis(10)),
            ..Default::default()
        };
        let stepped = step_config(&cfg, DegradeStep::Simple);
        assert_eq!(stepped.board_budget, Some(Duration::from_millis(40)));
        assert!(!stepped.extend.dp_profile);
    }
}
