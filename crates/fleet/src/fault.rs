//! Deterministic fault injection for chaos testing (feature `fault`).
//!
//! A [`FaultPlan`] scripts failures into a fleet run at three seams:
//!
//! * **panic-at-unit** — the router panics just before running the unit
//!   with a given *global input-order* index (board 0's units first, in
//!   `(group, unit)` order, then board 1's, …). Keying on input order —
//!   not an execution-order counter — is what makes the injection
//!   deterministic: the same unit panics for every worker count, steal
//!   pattern, and sharing mode, so the chaos suite can assert the
//!   *unaffected* boards stay bit-identical to the sequential reference.
//! * **delay-at-pop** — a job (global input-order job index) sleeps
//!   before doing any work, widening race windows for cancellation and
//!   deadline tests without touching the routed floats.
//! * **trip-validation** — a board index is reported as
//!   [`meander_layout::ValidationError::Injected`] even though its geometry is fine,
//!   exercising the rejection path on demand.
//!
//! Everything is compiled out unless the `fault` cargo feature is on;
//! production builds carry zero of this machinery.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// A scripted set of faults for one fleet run. Empty by default; builders
/// compose.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Global input-order unit indices that panic when reached.
    pub panic_units: BTreeSet<u64>,
    /// Global input-order job indices that sleep before running.
    pub delay_jobs: BTreeMap<u64, Duration>,
    /// Board indices whose validation is forced to fail.
    pub trip_boards: BTreeSet<usize>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panic_units.is_empty() && self.delay_jobs.is_empty() && self.trip_boards.is_empty()
    }

    /// Panic when the unit with global input-order index `unit` is about
    /// to run.
    pub fn panic_at_unit(mut self, unit: u64) -> Self {
        self.panic_units.insert(unit);
        self
    }

    /// Sleep `delay` when the job with global input-order index `job` is
    /// popped, before it does any work.
    pub fn delay_at_pop(mut self, job: u64, delay: Duration) -> Self {
        self.delay_jobs.insert(job, delay);
        self
    }

    /// Force board `board`'s validation to fail with
    /// [`meander_layout::ValidationError::Injected`].
    pub fn trip_validation(mut self, board: usize) -> Self {
        self.trip_boards.insert(board);
        self
    }

    /// A reproducible pseudo-random plan: given the run's shape
    /// (`units`, `jobs`, `boards`) and a `seed`, scripts one panic, one
    /// pop delay, and one validation trip at seed-derived positions. Two
    /// runs with the same seed and shape inject the identical faults —
    /// the chaos property suite sweeps seeds instead of relying on
    /// ambient randomness.
    pub fn seeded(seed: u64, units: u64, jobs: u64, boards: usize) -> Self {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: small, seedable, and dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        if units > 0 {
            plan = plan.panic_at_unit(next() % units);
        }
        if jobs > 0 {
            plan = plan.delay_at_pop(next() % jobs, Duration::from_micros(next() % 500));
        }
        if boards > 0 {
            plan = plan.trip_validation((next() % boards as u64) as usize);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::new()
            .panic_at_unit(3)
            .panic_at_unit(9)
            .delay_at_pop(1, Duration::from_millis(5))
            .trip_validation(2);
        assert!(plan.panic_units.contains(&3));
        assert!(plan.panic_units.contains(&9));
        assert_eq!(plan.delay_jobs.get(&1), Some(&Duration::from_millis(5)));
        assert!(plan.trip_boards.contains(&2));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, 40, 12, 6);
            let b = FaultPlan::seeded(seed, 40, 12, 6);
            assert_eq!(a.panic_units, b.panic_units, "seed {seed}");
            assert_eq!(a.delay_jobs, b.delay_jobs, "seed {seed}");
            assert_eq!(a.trip_boards, b.trip_boards, "seed {seed}");
            assert!(a.panic_units.iter().all(|&u| u < 40));
            assert!(a.delay_jobs.keys().all(|&j| j < 12));
            assert!(a.trip_boards.iter().all(|&b| b < 6));
        }
        // Different seeds actually vary the plan.
        let plans: BTreeSet<u64> = (0..16)
            .map(|s| {
                *FaultPlan::seeded(s, 1000, 1, 1)
                    .panic_units
                    .iter()
                    .next()
                    .expect("one panic unit")
            })
            .collect();
        assert!(plans.len() > 4, "seeds should spread: {plans:?}");
    }

    #[test]
    fn seeded_handles_empty_shapes() {
        let plan = FaultPlan::seeded(7, 0, 0, 0);
        assert!(plan.is_empty());
    }
}
