//! Deterministic fault injection for chaos testing (feature `fault`).
//!
//! A [`FaultPlan`] scripts failures into a fleet run at three seams:
//!
//! * **panic-at-unit** — the router panics just before running the unit
//!   with a given *global input-order* index (board 0's units first, in
//!   `(group, unit)` order, then board 1's, …). Keying on input order —
//!   not an execution-order counter — is what makes the injection
//!   deterministic: the same unit panics for every worker count, steal
//!   pattern, and sharing mode, so the chaos suite can assert the
//!   *unaffected* boards stay bit-identical to the sequential reference.
//! * **transient panic-at-unit** — like panic-at-unit, but scripted for
//!   one specific *attempt* number (usually 0, the first run). The
//!   resilience layer re-runs failed boards with a bumped
//!   [`FaultPlan::attempt`], so a transient fault fires once and the
//!   retry succeeds — the deterministic stand-in for flaky hardware,
//!   OOM-killed neighbours, and other heisenbugs.
//! * **delay-at-pop** — a job (global input-order job index) sleeps
//!   before doing any work, widening race windows for cancellation and
//!   deadline tests without touching the routed floats.
//!   [`FaultPlan::jittered_delays`] scripts a seeded, *bounded* delay for
//!   every job — still keyed on input order, so the jitter pattern is
//!   invariant across worker counts.
//! * **trip-validation** — a board index is reported as
//!   [`meander_layout::ValidationError::Injected`] even though its geometry is fine,
//!   exercising the rejection path on demand.
//!
//! Everything is compiled out unless the `fault` cargo feature is on;
//! production builds carry zero of this machinery.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// A scripted set of faults for one fleet run. Empty by default; builders
/// compose.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Global input-order unit indices that panic when reached.
    pub panic_units: BTreeSet<u64>,
    /// Global input-order unit indices that panic only when this run's
    /// [`FaultPlan::attempt`] equals the scripted attempt number.
    pub transient_units: BTreeMap<u64, u32>,
    /// Global input-order job indices that sleep before running.
    pub delay_jobs: BTreeMap<u64, Duration>,
    /// Board indices whose validation is forced to fail.
    pub trip_boards: BTreeSet<usize>,
    /// Which attempt this run represents (0 = first). `route_fleet` never
    /// changes it; the resilience layer's retries run rebased plans with
    /// the attempt bumped, so transient faults stop firing.
    pub attempt: u32,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panic_units.is_empty()
            && self.transient_units.is_empty()
            && self.delay_jobs.is_empty()
            && self.trip_boards.is_empty()
    }

    /// Panic when the unit with global input-order index `unit` is about
    /// to run.
    pub fn panic_at_unit(mut self, unit: u64) -> Self {
        self.panic_units.insert(unit);
        self
    }

    /// Panic at unit `unit`, but only on attempt `attempt` (0 = the first
    /// run): the transient-fault primitive the retry ladder recovers from.
    pub fn panic_at_unit_on_attempt(mut self, unit: u64, attempt: u32) -> Self {
        self.transient_units.insert(unit, attempt);
        self
    }

    /// `true` when this plan would panic unit `unit` on this run (a
    /// persistent fault, or a transient one scripted for
    /// [`FaultPlan::attempt`]).
    pub fn panics_unit(&self, unit: u64) -> bool {
        self.panic_units.contains(&unit)
            || self
                .transient_units
                .get(&unit)
                .is_some_and(|&a| a == self.attempt)
    }

    /// Sleep `delay` when the job with global input-order index `job` is
    /// popped, before it does any work.
    pub fn delay_at_pop(mut self, job: u64, delay: Duration) -> Self {
        self.delay_jobs.insert(job, delay);
        self
    }

    /// Scripts a seeded pseudo-random delay in `[0, bound]` for every job
    /// index in `0..jobs`. Keyed on input-order job indices like every
    /// other fault, so the jitter pattern — and therefore every outcome it
    /// can influence — is invariant across worker counts and sharing
    /// modes.
    pub fn jittered_delays(mut self, seed: u64, jobs: u64, bound: Duration) -> Self {
        let bound_us = bound.as_micros().min(u128::from(u64::MAX)) as u64;
        for j in 0..jobs {
            let d = if bound_us == 0 {
                0
            } else {
                splitmix64(seed ^ j.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (bound_us + 1)
            };
            self.delay_jobs.insert(j, Duration::from_micros(d));
        }
        self
    }

    /// Rebases this plan onto a **single-board re-run**: the board whose
    /// first-run unit indices span `units = (base, len)` and job indices
    /// span `jobs = (base, len)` becomes board 0 of a one-board fleet, and
    /// the run's [`FaultPlan::attempt`] is set to `attempt`. Persistent
    /// and transient unit faults inside the span are shifted to the
    /// board-local index space; everything outside the span — and every
    /// validation trip (a tripped board is rejected, never retried) — is
    /// dropped. Pure index arithmetic over the same input-order keys, so
    /// retried runs stay deterministic.
    pub fn rebased(&self, units: (u64, u64), jobs: (u64, u64), attempt: u32) -> FaultPlan {
        let mut plan = FaultPlan {
            attempt,
            ..FaultPlan::default()
        };
        for &u in self
            .panic_units
            .range(units.0..units.0.saturating_add(units.1))
        {
            plan.panic_units.insert(u - units.0);
        }
        for (&u, &a) in self
            .transient_units
            .range(units.0..units.0.saturating_add(units.1))
        {
            plan.transient_units.insert(u - units.0, a);
        }
        for (&j, &d) in self.delay_jobs.range(jobs.0..jobs.0.saturating_add(jobs.1)) {
            plan.delay_jobs.insert(j - jobs.0, d);
        }
        plan
    }

    /// Force board `board`'s validation to fail with
    /// [`meander_layout::ValidationError::Injected`].
    pub fn trip_validation(mut self, board: usize) -> Self {
        self.trip_boards.insert(board);
        self
    }

    /// A reproducible pseudo-random plan: given the run's shape
    /// (`units`, `jobs`, `boards`) and a `seed`, scripts one panic, one
    /// pop delay, and one validation trip at seed-derived positions. Two
    /// runs with the same seed and shape inject the identical faults —
    /// the chaos property suite sweeps seeds instead of relying on
    /// ambient randomness.
    pub fn seeded(seed: u64, units: u64, jobs: u64, boards: usize) -> Self {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(state)
        };
        let mut plan = FaultPlan::new();
        if units > 0 {
            plan = plan.panic_at_unit(next() % units);
        }
        if jobs > 0 {
            plan = plan.delay_at_pop(next() % jobs, Duration::from_micros(next() % 500));
        }
        if boards > 0 {
            plan = plan.trip_validation((next() % boards as u64) as usize);
        }
        plan
    }
}

/// splitmix64 mix step: small, seedable, and dependency-free.
fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = FaultPlan::new()
            .panic_at_unit(3)
            .panic_at_unit(9)
            .delay_at_pop(1, Duration::from_millis(5))
            .trip_validation(2);
        assert!(plan.panic_units.contains(&3));
        assert!(plan.panic_units.contains(&9));
        assert_eq!(plan.delay_jobs.get(&1), Some(&Duration::from_millis(5)));
        assert!(plan.trip_boards.contains(&2));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        for seed in 0..64u64 {
            let a = FaultPlan::seeded(seed, 40, 12, 6);
            let b = FaultPlan::seeded(seed, 40, 12, 6);
            assert_eq!(a.panic_units, b.panic_units, "seed {seed}");
            assert_eq!(a.delay_jobs, b.delay_jobs, "seed {seed}");
            assert_eq!(a.trip_boards, b.trip_boards, "seed {seed}");
            assert!(a.panic_units.iter().all(|&u| u < 40));
            assert!(a.delay_jobs.keys().all(|&j| j < 12));
            assert!(a.trip_boards.iter().all(|&b| b < 6));
        }
        // Different seeds actually vary the plan.
        let plans: BTreeSet<u64> = (0..16)
            .map(|s| {
                *FaultPlan::seeded(s, 1000, 1, 1)
                    .panic_units
                    .iter()
                    .next()
                    .expect("one panic unit")
            })
            .collect();
        assert!(plans.len() > 4, "seeds should spread: {plans:?}");
    }

    #[test]
    fn seeded_handles_empty_shapes() {
        let plan = FaultPlan::seeded(7, 0, 0, 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn transient_faults_fire_only_on_their_attempt() {
        let plan = FaultPlan::new()
            .panic_at_unit(9)
            .panic_at_unit_on_attempt(4, 0);
        assert!(!plan.is_empty());
        // Attempt 0 (the default): both fire.
        assert!(plan.panics_unit(4));
        assert!(plan.panics_unit(9));
        assert!(!plan.panics_unit(5));
        // Attempt 1: only the persistent fault fires.
        let retry = FaultPlan {
            attempt: 1,
            ..plan.clone()
        };
        assert!(!retry.panics_unit(4));
        assert!(retry.panics_unit(9));
    }

    #[test]
    fn jittered_delays_are_bounded_and_reproducible() {
        let bound = Duration::from_micros(200);
        let a = FaultPlan::new().jittered_delays(11, 16, bound);
        let b = FaultPlan::new().jittered_delays(11, 16, bound);
        assert_eq!(a.delay_jobs, b.delay_jobs);
        assert_eq!(a.delay_jobs.len(), 16);
        assert!(a.delay_jobs.values().all(|d| *d <= bound));
        // Different seeds vary the pattern; zero bound degenerates to zero.
        let c = FaultPlan::new().jittered_delays(12, 16, bound);
        assert_ne!(a.delay_jobs, c.delay_jobs);
        let z = FaultPlan::new().jittered_delays(11, 4, Duration::ZERO);
        assert!(z.delay_jobs.values().all(|d| *d == Duration::ZERO));
    }

    #[test]
    fn rebased_shifts_spans_and_drops_the_rest() {
        let plan = FaultPlan::new()
            .panic_at_unit(3)
            .panic_at_unit(10)
            .panic_at_unit_on_attempt(11, 0)
            .panic_at_unit_on_attempt(40, 0)
            .delay_at_pop(2, Duration::from_millis(1))
            .delay_at_pop(7, Duration::from_millis(2))
            .trip_validation(1);
        // Board spanning units [10, 15) and jobs [2, 4), retried as attempt 1.
        let sub = plan.rebased((10, 5), (2, 2), 1);
        assert_eq!(sub.attempt, 1);
        assert_eq!(sub.panic_units, BTreeSet::from([0]));
        assert_eq!(sub.transient_units, BTreeMap::from([(1, 0)]));
        assert_eq!(
            sub.delay_jobs,
            BTreeMap::from([(0, Duration::from_millis(1))])
        );
        // Trips never survive a rebase: rejected boards are not retried.
        assert!(sub.trip_boards.is_empty());
        // The transient fault was scripted for attempt 0 — on this
        // attempt-1 re-run it no longer fires, the persistent one does.
        assert!(sub.panics_unit(0));
        assert!(!sub.panics_unit(1));
    }
}
