//! The serving loop: a long-lived [`FleetSession`] over a routed
//! [`BoardSet`] that re-routes only what an edit touched.
//!
//! ## Why incremental re-routing is sound
//!
//! Candidacy in every spatial structure here is **lattice cell
//! intersection** (PR 4's cross-index contract): an indexed edge is a
//! candidate for a query window exactly when the cell range of its bbox
//! intersects the cell range of the window. During routing every unit
//! records the quantized span of each candidate-query window it issued
//! ([`meander_index::CellTouches`], per `(cell, inflate)` stratum since
//! diff pairs route under virtualized rules). An edit's damage is the
//! quantized bbox of the old *and* new inflated obstacle geometry —
//! inflated with the same `offset_convex` the index insertion uses, so
//! the damage cells are a superset of every indexed-edge cell the edit
//! changed.
//!
//! If a unit's touched set does not intersect the damage, then no
//! candidate query the unit made would have answered differently against
//! the edited world: the changed edges were never candidates for any of
//! its windows (old position or new). Obstacles influence the recordable
//! engine's output **only** through those candidate queries (a unit's
//! other inputs — its own traces, rules, target — are snapshotted per
//! unit), and the engine is deterministic, so replaying the unit would
//! reproduce its output bit for bit. The session therefore reuses the
//! retained output, and [`FleetSession::reroute_dirty`] is **bit-identical
//! to from-scratch routing** of the edited set — property-tested in
//! `tests/session.rs` across worker counts and both sharing modes.
//!
//! Engine shapes without the single query funnel (the rebuild engine,
//! `incremental: false`) record a conservative `mark_all` and re-route on
//! any damage. Structural edits ([`Edit::SetRules`],
//! [`Edit::ReplaceBoard`]) bypass cell accounting: the board replans and
//! re-routes wholesale. Validation verdicts are cached per library and
//! per board and recomputed only for edited scopes — identical verdicts
//! to the full pre-flight scan, without rescanning untouched boards.
//!
//! ## Lifecycle
//!
//! ```
//! use meander_fleet::{FleetConfig, FleetSession, BoardSet};
//! use meander_layout::gen::{fleet_boards_small, edit_stream};
//!
//! let case = fleet_boards_small(3, 7, 11);
//! let config = FleetConfig { workers: Some(2), ..Default::default() };
//! // Route the whole fleet once, recording touched cells per unit.
//! let mut session = FleetSession::new(BoardSet::new(case.boards.clone()), &config);
//! assert!(session.report().all_routed());
//!
//! // Serve edits: damage is accumulated per edit, consumed per re-route.
//! for edit in edit_stream(&case, 42, 4) {
//!     let damage = session.apply_edit(edit);
//!     let _ = damage.boards_affected;
//! }
//! let report = session.reroute_dirty(&config);
//! assert!(report.all_routed());
//! // Only the damaged units re-ran; the rest kept their routed geometry.
//! assert_eq!(
//!     report.stats.units_dirty + report.stats.units_skipped,
//!     report.stats.units,
//! );
//! ```

use crate::cache::{self, CacheKey, CachedGroup, CachedUnit};
use crate::edit::{add_damage, DamageReport};
use crate::engine::{BaseCache, BoardSet, FleetConfig, FleetReport, FleetStats};
use crate::outcome::{BoardOutcome, JobError, LatencyHistogram};
use crate::sched::{run_packets, SchedCounters, Tier};
use crate::steal::{JobStatus, StealCounters};
use meander_core::{
    apply_outputs, gather_obstacles, plan_board_units, run_unit_shared_recorded, CellTouches,
    DirtyCells, ExtendConfig, GroupReport, StratumKey, UnitInput, UnitOutput, WorldBase,
};
use meander_geom::Polygon;
use meander_layout::hash::{hash_board_local, LibraryCommitment};
use meander_layout::{
    validate_board, validate_library, Board, Edit, EditScope, LibraryBoard, Obstacle,
    ObstacleLibrary, ValidationError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One matching group's retained routing state: the planned units, their
/// last outputs, and the cell sets their candidate queries touched.
#[derive(Debug, Clone, Default)]
struct GroupPlan {
    target: f64,
    units: Vec<UnitInput>,
    outputs: Vec<Option<UnitOutput>>,
    touches: Vec<CellTouches>,
}

/// The result-cache identity of a planned group — the session-side twin
/// of the batch engine's per-job key derivation (same components, same
/// digests, so fleets and sessions sharing one cache hit each other's
/// entries).
fn plan_cache_key(
    board: &Board,
    g: usize,
    gp: &GroupPlan,
    extend: &ExtendConfig,
    library_root: u64,
    board_local_hash: u64,
) -> CacheKey {
    CacheKey {
        library_root,
        rules_hash: cache::rules_key(&gp.units, extend),
        board_local_hash,
        group_hash: cache::group_key(&board.groups()[g], g, gp.target),
    }
}

/// One scheduled re-route: a single dirty unit, snapshotted. Finer-grained
/// than the batch engine's `(board, group)` jobs — a serving re-route
/// typically runs a handful of units, so per-unit scheduling keeps every
/// worker busy even when one board absorbed all the damage.
struct ReJob {
    board: usize,
    group: usize,
    unit: usize,
    input: UnitInput,
    base: Option<Arc<WorldBase>>,
    obstacles: Arc<Vec<Polygon>>,
}

/// A long-lived serving handle over a routed [`BoardSet`].
///
/// Holds the fleet twice: the **pristine** boards (as submitted, the
/// canonical state edits apply to) and the **routed** set (pristine plus
/// the last re-route's outputs). Between them sit the remembered sets:
/// per-unit touched cells, per-library and per-board dirty cells, and
/// per-board structural flags. See the [module docs](self) for the
/// soundness argument.
pub struct FleetSession {
    /// Library table; `lib_of[b]` indexes into it. Slots are stable across
    /// edits (a content edit swaps the `Arc` inside its slot).
    libraries: Vec<Arc<ObstacleLibrary>>,
    lib_of: Vec<usize>,
    /// Canonical un-routed boards (local parts). Edits land here first.
    pristine: Vec<Board>,
    /// The served state: pristine + retained outputs, rebuilt per board
    /// on re-route, obstacle edits mirrored in place between re-routes.
    routed: BoardSet,
    plans: Vec<Vec<GroupPlan>>,
    /// Accumulated damage, consumed (and cleared) by `reroute_dirty`.
    lib_dirty: Vec<DirtyCells>,
    board_dirty: Vec<DirtyCells>,
    /// Boards that must replan and re-route wholesale (rules / board
    /// replacement edits, or a prior failure being retried).
    structural: Vec<bool>,
    /// Cached validation verdicts plus staleness markers — recomputed only
    /// for edited scopes, so an untouched fleet pays no rescan.
    lib_stale: Vec<bool>,
    board_stale: Vec<bool>,
    lib_verdict: Vec<Option<ValidationError>>,
    board_verdict: Vec<Option<ValidationError>>,
    /// Union of every retained unit's touched strata: the lattices damage
    /// must be quantized on. Empty ⇒ damage degrades to `mark_all`.
    strata: Vec<StratumKey>,
    /// Per-`(library slot, rules lattice)` shared bases, kept warm across
    /// re-routes; invalidated when a library's content changes.
    bases: BaseCache<usize>,
    /// Per-slot Merkle commitments over library content, built on the
    /// first cache-enabled re-route and maintained incrementally: a moved
    /// obstacle recomputes only its authentication path
    /// ([`LibraryCommitment::update_obstacle`]); add/remove change the
    /// leaf count and rebuild.
    commitments: Vec<Option<LibraryCommitment>>,
    /// The library roots the attached result cache's entries are keyed
    /// under, per slot — the `old_root` side of the next
    /// [`crate::ResultCache::apply_library_edit`]. Cleared when a
    /// re-route runs uncached: transitions the cache didn't observe must
    /// never be re-keyed past.
    served_roots: Vec<u64>,
    /// Likewise per board: the local digest the cache's entries are keyed
    /// under.
    served_board_hash: Vec<u64>,
    /// Cached [`hash_board_local`] per board, recomputed only for boards
    /// an edit actually touched ([`FleetSession::hash_stale`]) — a
    /// single-board edit on a large fleet must not rehash the fleet.
    local_hash: Vec<u64>,
    hash_stale: Vec<bool>,
    /// Last re-route's results, reused for skipped boards.
    cached_reports: Vec<Vec<GroupReport>>,
    outcomes: Vec<BoardOutcome>,
    last_stats: FleetStats,
}

impl FleetSession {
    /// Routes `set` from scratch (recording touched cells) and wraps it in
    /// a serving handle. The initial route's results are available via
    /// [`FleetSession::report`].
    pub fn new(set: BoardSet, config: &FleetConfig) -> FleetSession {
        let n = set.len();
        let mut libraries: Vec<Arc<ObstacleLibrary>> = Vec::new();
        let mut lib_of = Vec::with_capacity(n);
        for lb in set.boards() {
            let key = Arc::as_ptr(lb.library());
            let slot = libraries
                .iter()
                .position(|l| Arc::as_ptr(l) == key)
                .unwrap_or_else(|| {
                    libraries.push(Arc::clone(lb.library()));
                    libraries.len() - 1
                });
            lib_of.push(slot);
        }
        let pristine: Vec<Board> = set.boards().iter().map(|lb| lb.board().clone()).collect();
        let nl = libraries.len();
        let mut session = FleetSession {
            libraries,
            lib_of,
            pristine,
            routed: set,
            plans: vec![Vec::new(); n],
            lib_dirty: vec![DirtyCells::new(); nl],
            board_dirty: vec![DirtyCells::new(); n],
            structural: vec![true; n],
            lib_stale: vec![true; nl],
            board_stale: vec![true; n],
            lib_verdict: vec![None; nl],
            board_verdict: vec![None; n],
            strata: Vec::new(),
            bases: BaseCache::new(),
            commitments: (0..nl).map(|_| None).collect(),
            served_roots: Vec::new(),
            served_board_hash: Vec::new(),
            local_hash: vec![0; n],
            hash_stale: vec![true; n],
            cached_reports: vec![Vec::new(); n],
            outcomes: vec![BoardOutcome::Routed; n],
            last_stats: FleetStats::default(),
        };
        // The initial route is "everything structural" through the same
        // path serving re-routes take — one code path, one semantics.
        let _ = session.reroute_inner(config);
        session
    }

    /// The served (routed) state.
    pub fn boards(&self) -> &BoardSet {
        &self.routed
    }

    /// The canonical pre-route state with every applied edit: what a
    /// from-scratch [`crate::route_fleet`] of "the fleet as edited" would
    /// take as input. The equality property in `tests/session.rs` routes
    /// exactly this.
    pub fn pristine_boards(&self) -> Vec<LibraryBoard> {
        self.pristine
            .iter()
            .zip(&self.lib_of)
            .map(|(b, &slot)| LibraryBoard::new(Arc::clone(&self.libraries[slot]), b.clone()))
            .collect()
    }

    /// `true` when damage or structural edits are waiting for a
    /// [`FleetSession::reroute_dirty`].
    pub fn pending(&self) -> bool {
        self.structural.iter().any(|&s| s)
            || self.lib_dirty.iter().any(|d| !d.is_empty())
            || self.board_dirty.iter().any(|d| !d.is_empty())
    }

    /// The last re-route's report (cloned from the retained state).
    pub fn report(&self) -> FleetReport {
        FleetReport {
            reports: self.cached_reports.clone(),
            outcomes: self.outcomes.clone(),
            stats: self.last_stats.clone(),
        }
    }

    /// Applies one edit to the pristine fleet and accumulates its damage
    /// into the dirty sets — O(strata) bitmap work, no routing. Indices
    /// are taken modulo the current collection length and removals from
    /// empty collections are no-ops (see [`meander_layout::edit`]), so any
    /// generated edit is applicable in any order.
    pub fn apply_edit(&mut self, edit: Edit) -> DamageReport {
        let n = self.pristine.len();
        if n == 0 {
            return DamageReport::default();
        }
        match edit {
            Edit::MoveObstacle { scope, index, by } => match scope {
                EditScope::Board(b) => {
                    let b = b % n;
                    let len = self.pristine[b].obstacles().len();
                    if len == 0 {
                        return DamageReport::default();
                    }
                    let idx = index % len;
                    let old = self.pristine[b].obstacles()[idx].clone();
                    let new = old.translated(by);
                    self.edit_board_obstacle(b, idx, Some(new.clone()));
                    self.board_damage(b, &[old.polygon(), new.polygon()], 1)
                }
                EditScope::Library(slot) => {
                    let slot = slot % self.libraries.len();
                    let len = self.libraries[slot].len();
                    if len == 0 {
                        return DamageReport::default();
                    }
                    let idx = index % len;
                    let mut obs = self.libraries[slot].obstacles().to_vec();
                    let old = obs[idx].clone();
                    let new = old.translated(by);
                    obs[idx] = new.clone();
                    self.replace_library(slot, obs, Some(idx));
                    self.library_damage(slot, &[old.polygon(), new.polygon()])
                }
            },
            Edit::AddObstacle { scope, obstacle } => match scope {
                EditScope::Board(b) => {
                    let b = b % n;
                    self.hash_stale[b] = true;
                    self.pristine[b].add_obstacle(obstacle.clone());
                    if !self.structural[b] {
                        self.routed.boards_mut()[b]
                            .board_mut()
                            .add_obstacle(obstacle.clone());
                    }
                    self.board_damage(b, &[obstacle.polygon()], 1)
                }
                EditScope::Library(slot) => {
                    let slot = slot % self.libraries.len();
                    let mut obs = self.libraries[slot].obstacles().to_vec();
                    obs.push(obstacle.clone());
                    self.replace_library(slot, obs, None);
                    self.library_damage(slot, &[obstacle.polygon()])
                }
            },
            Edit::RemoveObstacle { scope, index } => match scope {
                EditScope::Board(b) => {
                    let b = b % n;
                    let len = self.pristine[b].obstacles().len();
                    if len == 0 {
                        return DamageReport::default();
                    }
                    let idx = index % len;
                    let old = self
                        .edit_board_obstacle(b, idx, None)
                        .expect("index in range");
                    self.board_damage(b, &[old.polygon()], 1)
                }
                EditScope::Library(slot) => {
                    let slot = slot % self.libraries.len();
                    let len = self.libraries[slot].len();
                    if len == 0 {
                        return DamageReport::default();
                    }
                    let idx = index % len;
                    let mut obs = self.libraries[slot].obstacles().to_vec();
                    let old = obs.remove(idx);
                    self.replace_library(slot, obs, None);
                    self.library_damage(slot, &[old.polygon()])
                }
            },
            Edit::SetRules { board, rules } => {
                let b = board % n;
                let ids: Vec<_> = self.pristine[b].traces().map(|(id, _)| id).collect();
                for id in ids {
                    if let Some(t) = self.pristine[b].trace_mut(id) {
                        t.set_rules(rules);
                    }
                }
                self.mark_structural(b)
            }
            Edit::ReplaceBoard { board, replacement } => {
                let b = board % n;
                self.pristine[b] = *replacement;
                self.mark_structural(b)
            }
        }
    }

    /// Re-routes exactly the units whose touched cells intersect the
    /// accumulated damage (plus structurally edited boards, wholesale),
    /// reusing retained outputs for everything else. Consumes and clears
    /// the dirty sets. The resulting fleet state and report are
    /// bit-identical to a from-scratch [`crate::route_fleet`] of
    /// [`FleetSession::pristine_boards`] under the same config (wall-clock
    /// stats excluded, as ever).
    ///
    /// `config.deadline` / `config.board_budget` / `config.cancel` are not
    /// consulted here: a serving re-route is bounded by its damage, which
    /// the caller already metered through [`FleetSession::apply_edit`].
    pub fn reroute_dirty(&mut self, config: &FleetConfig) -> FleetReport {
        self.reroute_inner(config)
    }

    // ---- Edit plumbing. --------------------------------------------------

    /// Replaces (`Some`) or removes (`None`) obstacle `idx` of board `b`,
    /// mirrored into the routed twin while the twin's obstacle list is in
    /// sync (it is unless the board has a structural re-route pending —
    /// then the twin is rebuilt wholesale on the next re-route anyway).
    fn edit_board_obstacle(
        &mut self,
        b: usize,
        idx: usize,
        new: Option<Obstacle>,
    ) -> Option<Obstacle> {
        self.hash_stale[b] = true;
        let old = match &new {
            Some(o) => self.pristine[b].replace_obstacle(idx, o.clone()),
            None => self.pristine[b].remove_obstacle(idx),
        };
        if !self.structural[b] {
            let twin = self.routed.boards_mut()[b].board_mut();
            match new {
                Some(o) => drop(twin.replace_obstacle(idx, o)),
                None => drop(twin.remove_obstacle(idx)),
            }
        }
        old
    }

    /// Swaps library `slot`'s content: new `Arc`, rebind every referencing
    /// board's routed twin, invalidate the slot's shared bases, mark the
    /// slot's validation verdict stale, advance the Merkle commitment.
    /// `moved` names the single replaced obstacle when the edit kept the
    /// leaf count — that recomputes only its authentication path.
    fn replace_library(&mut self, slot: usize, obstacles: Vec<Obstacle>, moved: Option<usize>) {
        let lib = Arc::new(ObstacleLibrary::new(obstacles));
        if let Some(commit) = &mut self.commitments[slot] {
            match moved {
                Some(idx) => {
                    commit.update_obstacle(idx, &lib.obstacles()[idx]);
                }
                None => *commit = LibraryCommitment::new(&lib),
            }
        }
        self.libraries[slot] = Arc::clone(&lib);
        for (b, &s) in self.lib_of.iter().enumerate() {
            if s == slot {
                self.routed.boards_mut()[b].set_library(Arc::clone(&lib));
            }
        }
        self.bases.invalidate(slot);
        self.lib_stale[slot] = true;
    }

    fn board_damage(&mut self, b: usize, polys: &[&Polygon], affected: usize) -> DamageReport {
        self.board_stale[b] = true;
        let grew = add_damage(&mut self.board_dirty[b], &self.strata, polys);
        DamageReport {
            boards_affected: affected,
            cells_dirty: grew,
            structural: false,
        }
    }

    fn library_damage(&mut self, slot: usize, polys: &[&Polygon]) -> DamageReport {
        let grew = add_damage(&mut self.lib_dirty[slot], &self.strata, polys);
        DamageReport {
            boards_affected: self.lib_of.iter().filter(|&&s| s == slot).count(),
            cells_dirty: grew,
            structural: false,
        }
    }

    fn mark_structural(&mut self, b: usize) -> DamageReport {
        self.structural[b] = true;
        self.board_stale[b] = true;
        self.hash_stale[b] = true;
        DamageReport {
            boards_affected: 1,
            cells_dirty: 0,
            structural: true,
        }
    }

    // ---- The re-route. ---------------------------------------------------

    fn reroute_inner(&mut self, config: &FleetConfig) -> FleetReport {
        let n = self.pristine.len();
        let workers = config
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|w| w.get())
                    .unwrap_or(1)
            })
            .max(1);

        // Refresh validation verdicts for edited scopes only. Verdicts are
        // deterministic in content, so cached ones equal what the batch
        // engine's full pre-flight scan would recompute.
        let mut validation_wall = Duration::ZERO;
        if config.validate {
            let t0 = Instant::now();
            for slot in 0..self.libraries.len() {
                if self.lib_stale[slot] {
                    self.lib_verdict[slot] = validate_library(&self.libraries[slot]).err();
                    self.lib_stale[slot] = false;
                }
            }
            for b in 0..n {
                if self.board_stale[b] {
                    self.board_verdict[b] = validate_board(&self.pristine[b]).err();
                    self.board_stale[b] = false;
                }
            }
            validation_wall = t0.elapsed();
        }

        // The damage this re-route consumes (stat, before clearing).
        let cells_dirty = self
            .lib_dirty
            .iter()
            .chain(self.board_dirty.iter())
            .fold(0u64, |acc, d| acc.saturating_add(d.cells()));

        // ---- Result-cache key transitions. ------------------------------
        // An edit moved content identities the attached cache keys on.
        // Walk each transition with the very damage this re-route is
        // about to consume: entries whose touches intersect it are
        // evicted, the rest re-keyed to the new identity (sound by the
        // cell-intersection argument in the module docs — the same one
        // that lets clean units keep their retained outputs).
        let result_cache = config.cache.as_deref();
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let mut board_hash: Vec<u64> = Vec::new();
        if let Some(rc) = result_cache {
            for slot in 0..self.libraries.len() {
                if self.commitments[slot].is_none() {
                    self.commitments[slot] = Some(LibraryCommitment::new(&self.libraries[slot]));
                }
            }
            let new_roots: Vec<u64> = self
                .commitments
                .iter()
                .map(|c| c.as_ref().map(LibraryCommitment::root).unwrap_or(0))
                .collect();
            if self.served_roots.len() == new_roots.len() {
                for ((&old, &new), dirty) in self
                    .served_roots
                    .iter()
                    .zip(&new_roots)
                    .zip(&self.lib_dirty)
                {
                    rc.apply_library_edit(old, new, dirty);
                }
            }
            // Scoped rehash: only boards an edit actually touched — the
            // wholesale `pristine.iter().map(hash_board_local)` this
            // replaced made every cached re-route O(fleet) even for a
            // one-board edit.
            for b in 0..n {
                if self.hash_stale[b] {
                    self.local_hash[b] = hash_board_local(&self.pristine[b]);
                    self.hash_stale[b] = false;
                }
            }
            board_hash = self.local_hash.clone();
            if self.served_board_hash.len() == board_hash.len() {
                for b in 0..n {
                    let (old, new) = (self.served_board_hash[b], board_hash[b]);
                    if old == new {
                        continue;
                    }
                    // A twin still serving under the old digest keeps the
                    // entries alive — content addressing means they stay
                    // exact for it; the edited board re-routes and
                    // inserts under its new digest.
                    if board_hash.contains(&old) {
                        continue;
                    }
                    if self.structural[b] {
                        // The board's unit plan itself may have changed:
                        // nothing under the old digest can be re-keyed.
                        rc.drop_board(old);
                    } else {
                        rc.apply_board_edit(old, new, &self.board_dirty[b]);
                    }
                }
            }
            self.served_roots = new_roots;
            self.served_board_hash = board_hash.clone();
        } else {
            // Without the cache in hand this re-route's transitions go
            // unobserved; forget the served identities rather than re-key
            // entries past unobserved damage on a later cached re-route.
            self.served_roots.clear();
            self.served_board_hash.clear();
        }

        // ---- Classify: rejected / full re-route / per-unit dirty test. --
        let mut dirty_units: Vec<(usize, usize, usize)> = Vec::new();
        // Boards that replanned this re-route: their routed twin must be
        // rebuilt even when every group came out of the cache and no unit
        // is dirty.
        let mut replanned: Vec<bool> = vec![false; n];
        for b in 0..n {
            let verdict = if config.validate {
                self.lib_verdict[self.lib_of[b]]
                    .clone()
                    .or_else(|| self.board_verdict[b].clone())
            } else {
                None
            };
            if let Some(err) = verdict {
                // Rejected: geometry reverts to pristine (exactly what the
                // batch engine leaves untouched), retained state dropped.
                // Empty plans mark the board for a full replan if a later
                // edit makes it valid again.
                if !matches!(self.outcomes[b], BoardOutcome::Rejected(_)) {
                    self.routed.boards_mut()[b] = LibraryBoard::new(
                        Arc::clone(&self.libraries[self.lib_of[b]]),
                        self.pristine[b].clone(),
                    );
                }
                self.plans[b].clear();
                self.cached_reports[b].clear();
                self.outcomes[b] = BoardOutcome::Rejected(err);
                self.structural[b] = false;
                continue;
            }
            if self.structural[b] || self.plans[b].is_empty() {
                replanned[b] = true;
                let mut plans_b: Vec<GroupPlan> = plan_board_units(&self.pristine[b])
                    .into_iter()
                    .map(|(target, units)| GroupPlan {
                        target,
                        outputs: vec![None; units.len()],
                        touches: vec![CellTouches::new(); units.len()],
                        units,
                    })
                    .collect();
                // A replanned board consults the result cache per group:
                // a hit replays the stored outputs and touches (exact by
                // determinism), a miss re-routes below.
                for (g, gp) in plans_b.iter_mut().enumerate() {
                    let cached = result_cache.and_then(|rc| {
                        let key = plan_cache_key(
                            &self.pristine[b],
                            g,
                            gp,
                            &config.extend,
                            self.served_roots[self.lib_of[b]],
                            board_hash[b],
                        );
                        rc.lookup(&key)
                            .filter(|c| c.units().len() == gp.units.len())
                    });
                    match cached {
                        Some(c) => {
                            cache_hits += 1;
                            for (u, cu) in c.units().iter().enumerate() {
                                gp.outputs[u] = Some(cu.to_output());
                                gp.touches[u] = cu.touches().clone();
                            }
                        }
                        None => {
                            if result_cache.is_some() {
                                cache_misses += 1;
                            }
                            for u in 0..gp.units.len() {
                                dirty_units.push((b, g, u));
                            }
                        }
                    }
                }
                self.plans[b] = plans_b;
            } else {
                let slot = self.lib_of[b];
                for (g, gp) in self.plans[b].iter().enumerate() {
                    for u in 0..gp.units.len() {
                        if gp.outputs[u].is_none()
                            || gp.touches[u].intersects(&self.lib_dirty[slot])
                            || gp.touches[u].intersects(&self.board_dirty[b])
                        {
                            dirty_units.push((b, g, u));
                        }
                    }
                }
            }
        }
        let units_total: usize = self
            .plans
            .iter()
            .flat_map(|groups| groups.iter().map(|gp| gp.units.len()))
            .sum();

        // ---- Shared bases for the dirty units (cache kept warm). --------
        let base_before = self.bases.build_time();
        if config.share_library {
            for &(b, g, u) in &dirty_units {
                let slot = self.lib_of[b];
                self.bases.get_or_build(
                    slot,
                    self.plans[b][g].units[u].rules(),
                    &self.libraries[slot],
                    config.extend.index,
                );
            }
        }
        let base_build = self.bases.build_time() - base_before;

        // ---- Snapshot the dirty units into per-unit jobs. ----------------
        let mut board_obstacles: Vec<Option<Arc<Vec<Polygon>>>> = vec![None; n];
        let mut jobs: Vec<ReJob> = Vec::with_capacity(dirty_units.len());
        for &(b, g, u) in &dirty_units {
            let slot = self.lib_of[b];
            let obstacles = board_obstacles[b]
                .get_or_insert_with(|| {
                    // Snapshot from the *pristine* board — the batch engine
                    // gathers from its (un-routed) input exactly the same.
                    Arc::new(if config.share_library {
                        gather_obstacles(&self.pristine[b])
                    } else {
                        let mut all = self.libraries[slot].polygons();
                        all.extend(gather_obstacles(&self.pristine[b]));
                        all
                    })
                })
                .clone();
            let input = self.plans[b][g].units[u].clone();
            let base = if config.share_library {
                self.bases.lookup(slot, input.rules())
            } else {
                None
            };
            jobs.push(ReJob {
                board: b,
                group: g,
                unit: u,
                input,
                base,
                obstacles,
            });
        }

        // ---- Route the dirty units as Interactive packets. ---------------
        // Highest bucket: on a shared scheduler a serving re-route's
        // packets preempt any in-flight batch fleet at packet boundaries.
        let jobs = Arc::new(jobs);
        let t0 = Instant::now();
        let (statuses, scheduler, sched_delta) = if jobs.is_empty() {
            (
                Vec::new(),
                StealCounters::default(),
                SchedCounters::default(),
            )
        } else {
            let extend = config.extend.clone();
            run_packets(
                config.sched.as_ref(),
                Tier::Interactive,
                workers,
                Arc::clone(&jobs),
                None,
                Arc::new(move |job: &ReJob| {
                    let t_job = Instant::now();
                    let mut touches = CellTouches::new();
                    let out = run_unit_shared_recorded(
                        &job.input,
                        &job.obstacles,
                        job.base.as_ref(),
                        &extend,
                        &mut touches,
                    );
                    (out, touches, t_job.elapsed())
                }),
            )
        };
        let route_wall = t0.elapsed();

        // ---- Harvest: outputs + touches back into the plans. -------------
        let mut failed: Vec<Option<JobError>> = vec![None; n];
        let mut units_run = 0usize;
        let mut latency = LatencyHistogram::default();
        let mut board_busy: Vec<Duration> = vec![Duration::ZERO; n];
        for (job, status) in jobs.iter().zip(statuses) {
            match status {
                JobStatus::Done((out, touches, elapsed)) => {
                    units_run += 1;
                    latency.record(elapsed);
                    board_busy[job.board] += out.busy();
                    let gp = &mut self.plans[job.board][job.group];
                    gp.outputs[job.unit] = Some(out);
                    gp.touches[job.unit] = touches;
                }
                JobStatus::Panicked(p) => {
                    failed[job.board].get_or_insert(JobError::Panicked {
                        group: job.group,
                        unit: Some(job.unit as u64),
                        message: p.message(),
                    });
                }
                // No stop predicate is passed, so nothing is ever skipped.
                JobStatus::Skipped => unreachable!("session re-routes run without a stop signal"),
            }
        }

        // ---- Per-board write-back (atomic: pristine + all outputs). ------
        let mut touched: Vec<bool> = vec![false; n];
        for &(b, _, _) in &dirty_units {
            touched[b] = true;
        }
        for (t, &r) in touched.iter_mut().zip(&replanned) {
            *t |= r;
        }
        for b in 0..n {
            if matches!(self.outcomes[b], BoardOutcome::Rejected(_)) && self.plans[b].is_empty() {
                continue;
            }
            if let Some(err) = failed[b].take() {
                // Failure domain = one board: revert it to pristine, drop
                // retained state, retry wholesale on the next re-route.
                self.routed.boards_mut()[b] = LibraryBoard::new(
                    Arc::clone(&self.libraries[self.lib_of[b]]),
                    self.pristine[b].clone(),
                );
                self.plans[b].clear();
                self.cached_reports[b].clear();
                self.outcomes[b] = BoardOutcome::Failed(err);
                self.structural[b] = true;
                continue;
            }
            if !touched[b] {
                continue; // clean board: routed state and report retained
            }
            let mut board = self.pristine[b].clone();
            let mut reports_b = Vec::with_capacity(self.plans[b].len());
            for gp in &self.plans[b] {
                let outputs: Vec<UnitOutput> = gp
                    .outputs
                    .iter()
                    .map(|o| {
                        o.clone()
                            .expect("every unit of a non-failed board has output")
                    })
                    .collect();
                let (traces, busy) = apply_outputs(&mut board, outputs);
                reports_b.push(GroupReport {
                    target: gp.target,
                    traces,
                    runtime: busy,
                });
            }
            self.routed.boards_mut()[b] =
                LibraryBoard::new(Arc::clone(&self.libraries[self.lib_of[b]]), board);
            self.cached_reports[b] = reports_b;
            self.outcomes[b] = BoardOutcome::Routed;
            self.structural[b] = false;
        }

        // ---- Feed the result cache (insert-if-absent). -------------------
        // Every group of every board routed this re-route goes in under
        // its current identity; twins elsewhere in the fleet (or future
        // fleets sharing the cache) hit it.
        if let Some(rc) = result_cache {
            for b in 0..n {
                if !touched[b] || !matches!(self.outcomes[b], BoardOutcome::Routed) {
                    continue;
                }
                for (g, gp) in self.plans[b].iter().enumerate() {
                    let key = plan_cache_key(
                        &self.pristine[b],
                        g,
                        gp,
                        &config.extend,
                        self.served_roots[self.lib_of[b]],
                        board_hash[b],
                    );
                    if rc.contains(&key) {
                        continue;
                    }
                    let units: Vec<CachedUnit> = gp
                        .outputs
                        .iter()
                        .zip(&gp.touches)
                        .map(|(o, t)| {
                            CachedUnit::new(
                                o.as_ref().expect("routed board has all outputs"),
                                t.clone(),
                            )
                        })
                        .collect();
                    rc.insert(key, CachedGroup::new(units));
                }
            }
        }

        // ---- Refresh the stratum union; consume the damage. --------------
        self.strata.clear();
        for groups in &self.plans {
            for gp in groups {
                for t in &gp.touches {
                    for key in t.strata() {
                        if !self.strata.contains(&key) {
                            self.strata.push(key);
                        }
                    }
                }
            }
        }
        for d in &mut self.lib_dirty {
            d.clear();
        }
        for d in &mut self.board_dirty {
            d.clear();
        }

        // ---- Report. -----------------------------------------------------
        let count =
            |pred: fn(&BoardOutcome) -> bool| self.outcomes.iter().filter(|o| pred(o)).count();
        self.last_stats = FleetStats {
            boards: n,
            jobs: jobs.len(),
            units: units_total,
            units_run,
            libraries: self.libraries.len(),
            library_polygons: self.libraries.iter().map(|l| l.len()).sum(),
            routed: count(BoardOutcome::is_routed),
            rejected: count(|o| matches!(o, BoardOutcome::Rejected(_))),
            failed: count(|o| matches!(o, BoardOutcome::Failed(_))),
            cancelled: 0,
            deadline_exceeded: 0,
            degraded: 0,
            shed: 0,
            retries: 0,
            units_dirty: jobs.len(),
            units_skipped: units_total.saturating_sub(jobs.len()),
            cells_dirty,
            cache_hits,
            cache_misses,
            boards_replanned: replanned.iter().filter(|&&r| r).count(),
            board_busy,
            validation_wall,
            base_build,
            route_wall,
            latency,
            scheduler,
            sched: sched_delta,
        };
        self.report()
    }
}
