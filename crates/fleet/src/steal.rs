//! Work-stealing scheduler: per-worker deques with steal-half, panic
//! isolation, and cooperative stop.
//!
//! The single-board driver's [`meander_core::par::par_map`] hands out work
//! through one shared atomic cursor — fine for a dozen units, but a fleet
//! flattens *boards × groups* jobs of wildly uneven cost (a 2-trace board
//! next to a 6-trace one), and a single cursor serializes every claim
//! through one cache line. This scheduler generalizes it to the classic
//! shape: each worker owns a deque seeded round-robin, pops locally from
//! the front, and — when dry — steals the *back half* of a victim's deque
//! in one grab. Stealing halves (rather than single jobs) keeps thieves
//! off the victims' locks: a worker that inherits a long tail serves
//! itself locally from then on.
//!
//! ## Failure domains
//!
//! A job is a failure domain. [`steal_try_map`] runs every job under
//! [`std::panic::catch_unwind`]: a panicking job yields
//! [`JobStatus::Panicked`] in its own slot, the worker thread *survives*
//! and keeps draining its deque, and every other job's result is
//! untouched. Panics are counted per worker in [`StealCounters::panics`].
//! (Jobs snapshot their inputs and write only to their own slot, so
//! unwinding mid-job cannot corrupt shared state — the engine's jobs are
//! unwind-safe by construction.)
//!
//! The optional `stop` predicate is checked at every **pop boundary** —
//! before a worker claims its next job — so a cancelled or over-deadline
//! run stops burning CPU within one job's granularity. Jobs never claimed
//! report [`JobStatus::Skipped`].
//!
//! ## Determinism
//!
//! Scheduling decides only *who computes what when*. Every job's result
//! lands in the slot of its input index, and callers consume the slots in
//! input order — so the output vector (and everything written back from
//! it) is identical for every worker count, steal pattern, and timing, as
//! long as each job is a pure function of its input. That is the same
//! order-indexed write-back contract `par_map` established; the fleet's
//! end-to-end bit-identity tests ride on it.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Scheduler observability: how the fleet's jobs moved between workers.
#[derive(Debug, Clone, Default)]
pub struct StealCounters {
    /// Workers that ran (1 for the serial fallback).
    pub workers: usize,
    /// Successful steal operations (each may move several jobs).
    pub steals: u64,
    /// Jobs moved by steals.
    pub stolen_jobs: u64,
    /// Victim probes, including empty-handed ones.
    pub steal_attempts: u64,
    /// Jobs executed per worker (index = worker id); panicking jobs count
    /// as executed.
    pub executed: Vec<u64>,
    /// Busy time (inside job closures) per worker.
    pub busy: Vec<Duration>,
    /// Panics caught per worker (index = worker id). The worker survives
    /// each one; the sum equals the number of `JobStatus::Panicked` slots.
    pub panics: Vec<u64>,
    /// Jobs never claimed because the stop predicate tripped.
    pub skipped: u64,
}

impl StealCounters {
    /// Total busy time across workers.
    pub fn total_busy(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// Total executed jobs (equals scheduled jobs minus skipped ones).
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }

    /// Total panics caught across workers.
    pub fn total_panics(&self) -> u64 {
        self.panics.iter().sum()
    }
}

/// The payload of a job that panicked, preserved for re-raising or
/// reporting.
pub struct JobPanic {
    payload: Box<dyn Any + Send>,
}

impl JobPanic {
    /// Wraps a caught unwind payload (the sched pool's packet wrappers
    /// build these the same way this module's workers do).
    pub(crate) fn from_payload(payload: Box<dyn Any + Send>) -> JobPanic {
        JobPanic { payload }
    }

    /// Best-effort human-readable panic message (`&str` / `String`
    /// payloads; the usual `panic!` shapes).
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// The original payload, for [`std::panic::resume_unwind`].
    pub fn into_payload(self) -> Box<dyn Any + Send> {
        self.payload
    }
}

impl fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JobPanic({:?})", self.message())
    }
}

/// Per-job outcome of a [`steal_try_map`] run.
#[derive(Debug)]
pub enum JobStatus<R> {
    /// The job ran to completion.
    Done(R),
    /// The job panicked; the worker caught it and moved on.
    Panicked(JobPanic),
    /// The job was never claimed — the stop predicate tripped first.
    Skipped,
}

impl<R> JobStatus<R> {
    /// `true` for [`JobStatus::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, JobStatus::Done(_))
    }

    /// The result, if the job completed.
    pub fn done(self) -> Option<R> {
        match self {
            JobStatus::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// A cooperative stop predicate checked at pop boundaries: return `true`
/// to stop claiming new jobs (in-flight jobs finish; unclaimed jobs come
/// back [`JobStatus::Skipped`]).
pub type StopFn<'a> = &'a (dyn Fn() -> bool + Sync);

/// Maps `f` over `items` on `workers` work-stealing workers with panic
/// isolation, returning one [`JobStatus`] per item in input order plus the
/// scheduler counters.
///
/// Items are seeded round-robin (item `i` starts on worker `i % workers`),
/// so a fleet's boards spread across the pool even before any stealing.
/// Falls back to a serial loop (same isolation, same stop semantics) for
/// 0/1 items or 1 worker.
///
/// A panic inside `f` is caught at the job boundary: the slot records
/// [`JobStatus::Panicked`], [`StealCounters::panics`] ticks for the
/// catching worker, and the worker keeps draining its deque — one bad job
/// can never poison the pool or discard its neighbours' results.
///
/// `stop` (when given) is polled before every claim; once it returns
/// `true`, workers stop claiming and the remaining jobs report
/// [`JobStatus::Skipped`].
pub fn steal_try_map<T, R, F>(
    items: &[T],
    workers: usize,
    stop: Option<StopFn<'_>>,
    f: F,
) -> (Vec<JobStatus<R>>, StealCounters)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    let should_stop = || stop.map(|s| s()).unwrap_or(false);
    if workers <= 1 || n <= 1 {
        let t0 = Instant::now();
        let mut out: Vec<JobStatus<R>> = Vec::with_capacity(n);
        let mut panics = 0u64;
        let mut executed = 0u64;
        for item in items {
            if should_stop() {
                out.push(JobStatus::Skipped);
                continue;
            }
            executed += 1;
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => out.push(JobStatus::Done(r)),
                Err(payload) => {
                    panics += 1;
                    out.push(JobStatus::Panicked(JobPanic { payload }));
                }
            }
        }
        let skipped = out
            .iter()
            .filter(|s| matches!(s, JobStatus::Skipped))
            .count() as u64;
        let counters = StealCounters {
            workers: 1,
            executed: vec![executed],
            busy: vec![t0.elapsed()],
            panics: vec![panics],
            skipped,
            ..Default::default()
        };
        return (out, counters);
    }

    // Round-robin seeding: deque w holds {i | i % workers == w}, ascending.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<JobStatus<R>>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let remaining = AtomicUsize::new(n);
    let steals = AtomicU64::new(0);
    let stolen_jobs = AtomicU64::new(0);
    let steal_attempts = AtomicU64::new(0);

    let per_worker: Vec<(u64, Duration, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let slots = &slots;
                let remaining = &remaining;
                let steals = &steals;
                let stolen_jobs = &stolen_jobs;
                let steal_attempts = &steal_attempts;
                let f = &f;
                let should_stop = &should_stop;
                scope.spawn(move || {
                    // Accounts a claimed job as finished even if slot
                    // assignment unwinds — without this, a panicking
                    // worker would leave `remaining > 0` and every other
                    // worker would spin forever instead of joining.
                    struct DoneGuard<'a>(&'a AtomicUsize);
                    impl Drop for DoneGuard<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::Release);
                        }
                    }
                    let mut executed = 0u64;
                    let mut busy = Duration::ZERO;
                    let mut panics = 0u64;
                    let mut dry_rounds = 0u32;
                    loop {
                        // Pop boundary: the cooperative stop check. Jobs
                        // already claimed elsewhere run to completion;
                        // nothing new is claimed.
                        if should_stop() {
                            break;
                        }
                        // Local pop from the front (submission order).
                        let job = deques[w].lock().expect("deque").pop_front();
                        if let Some(i) = job {
                            dry_rounds = 0;
                            let _done = DoneGuard(remaining);
                            let t0 = Instant::now();
                            // The job is the failure domain: catch the
                            // unwind here so the worker survives and the
                            // panic lands in the job's own slot.
                            let status = match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                                Ok(r) => JobStatus::Done(r),
                                Err(payload) => {
                                    panics += 1;
                                    JobStatus::Panicked(JobPanic { payload })
                                }
                            };
                            busy += t0.elapsed();
                            *slots[i].lock().expect("slot") = Some(status);
                            executed += 1;
                            continue;
                        }
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Dry: probe victims round-robin from our right
                        // neighbor, stealing the back half of the first
                        // non-empty deque in one grab.
                        let mut stole = false;
                        for k in 1..workers {
                            let v = (w + k) % workers;
                            steal_attempts.fetch_add(1, Ordering::Relaxed);
                            let grabbed: VecDeque<usize> = {
                                let mut victim = deques[v].lock().expect("victim deque");
                                let keep = victim.len() / 2;
                                victim.split_off(keep)
                            };
                            if grabbed.is_empty() {
                                continue;
                            }
                            steals.fetch_add(1, Ordering::Relaxed);
                            stolen_jobs.fetch_add(grabbed.len() as u64, Ordering::Relaxed);
                            let mut own = deques[w].lock().expect("deque");
                            own.extend(grabbed);
                            stole = true;
                            break;
                        }
                        if !stole {
                            // Everything queued is in flight elsewhere.
                            // Yield for a few rounds (a straggler may
                            // still spawn no new work, but finishes soon
                            // in the common case), then back off to short
                            // sleeps so a long tail job isn't contended
                            // by W−1 spinning cores.
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            dry_rounds += 1;
                            if dry_rounds < 8 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        }
                    }
                    (executed, busy, panics)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("steal worker"))
            .collect()
    });

    let mut skipped = 0u64;
    let out: Vec<JobStatus<R>> = slots
        .into_iter()
        .map(|s| match s.into_inner().expect("slot lock") {
            Some(status) => status,
            None => {
                skipped += 1;
                JobStatus::Skipped
            }
        })
        .collect();
    let counters = StealCounters {
        workers,
        steals: steals.into_inner(),
        stolen_jobs: stolen_jobs.into_inner(),
        steal_attempts: steal_attempts.into_inner(),
        executed: per_worker.iter().map(|(e, _, _)| *e).collect(),
        busy: per_worker.iter().map(|(_, b, _)| *b).collect(),
        panics: per_worker.into_iter().map(|(_, _, p)| p).collect(),
        skipped,
    };
    (out, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn unwrap_done<R: std::fmt::Debug>(statuses: Vec<JobStatus<R>>) -> Vec<R> {
        statuses
            .into_iter()
            .map(|s| match s {
                JobStatus::Done(r) => r,
                other => panic!("expected Done, got {other:?}"),
            })
            .collect()
    }

    #[test]
    fn results_land_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 3, 8] {
            let (statuses, counters) = steal_try_map(&items, workers, None, |&x| x * x);
            assert_eq!(counters.total_executed(), items.len() as u64);
            assert_eq!(counters.total_panics(), 0);
            assert_eq!(counters.skipped, 0);
            let out = unwrap_done(statuses);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        let (statuses, c) = steal_try_map(&empty, 4, None, |&x| x);
        assert!(statuses.is_empty());
        assert_eq!(c.workers, 1);
        let (statuses, c) = steal_try_map(&[41u32], 4, None, |&x| x + 1);
        assert_eq!(unwrap_done(statuses), vec![42]);
        assert_eq!(c.total_executed(), 1);
    }

    #[test]
    fn uneven_jobs_all_execute() {
        // Wildly uneven job costs: front-loaded heavy work forces the
        // round-robin seed to rebalance through steals (on a multi-core
        // host) or run through serially (1 CPU) — either way, every job
        // executes exactly once and order is preserved.
        let items: Vec<u64> = (0..64).map(|i| if i < 4 { 200_000 } else { 50 }).collect();
        let (statuses, counters) = steal_try_map(&items, 4, None, |&spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(unwrap_done(statuses).len(), 64);
        assert_eq!(counters.total_executed(), 64);
        assert_eq!(counters.executed.len(), counters.workers);
        assert_eq!(counters.busy.len(), counters.workers);
        assert_eq!(counters.panics.len(), counters.workers);
    }

    #[test]
    fn more_workers_than_jobs() {
        let items: Vec<u32> = (0..3).collect();
        let (statuses, counters) = steal_try_map(&items, 16, None, |&x| x + 1);
        assert_eq!(unwrap_done(statuses), vec![1, 2, 3]);
        assert!(counters.workers <= 3);
        assert_eq!(counters.total_executed(), 3);
    }

    /// Regression (PR 6): a panicking job used to propagate through the
    /// worker join and discard every completed result. Now the job is its
    /// own failure domain: all 15 healthy jobs complete with correct
    /// values, the panic is surfaced in its own slot with its message, and
    /// the per-worker panic counters account for exactly one catch.
    #[test]
    fn panicking_job_is_isolated_and_counted() {
        let items: Vec<u32> = (0..16).collect();
        for workers in [1, 2, 4] {
            let (statuses, counters) = steal_try_map(&items, workers, None, |&x| {
                assert!(x != 7, "boom at 7");
                x * 10
            });
            assert_eq!(statuses.len(), 16);
            for (i, s) in statuses.iter().enumerate() {
                match s {
                    JobStatus::Done(v) => {
                        assert_ne!(i, 7);
                        assert_eq!(*v, i as u32 * 10);
                    }
                    JobStatus::Panicked(p) => {
                        assert_eq!(i, 7, "only job 7 panics");
                        assert!(p.message().contains("boom at 7"), "{}", p.message());
                    }
                    JobStatus::Skipped => panic!("nothing may be skipped"),
                }
            }
            assert_eq!(counters.total_panics(), 1, "workers={workers}");
            assert_eq!(counters.total_executed(), 16, "panicked job still executed");
        }
    }

    #[test]
    fn stop_predicate_skips_unclaimed_jobs() {
        // Stop immediately: nothing is claimed, everything is Skipped.
        let items: Vec<u32> = (0..32).collect();
        for workers in [1, 3] {
            let stop = || true;
            let (statuses, counters) = steal_try_map(&items, workers, Some(&stop), |&x| x);
            assert!(statuses.iter().all(|s| matches!(s, JobStatus::Skipped)));
            assert_eq!(counters.skipped, 32, "workers={workers}");
            assert_eq!(counters.total_executed(), 0);
        }
        // Stop after the first few claims: the prefix completes, the rest
        // skip, and nothing is lost in between.
        let fired = AtomicBool::new(false);
        let stop = || fired.swap(true, Ordering::Relaxed);
        let (statuses, counters) = steal_try_map(&items, 1, Some(&stop), |&x| x);
        let done = statuses.iter().filter(|s| s.is_done()).count();
        assert_eq!(done, 1, "exactly one claim before the trip");
        assert_eq!(counters.skipped, 31);
    }

    #[test]
    fn counters_are_consistent() {
        let items: Vec<u64> = (0..500).collect();
        let (_, c) = steal_try_map(&items, 4, None, |&x| x);
        // Every steal moved at least one job; attempts ≥ steals.
        assert!(c.steal_attempts >= c.steals);
        assert!(c.stolen_jobs >= c.steals);
        assert_eq!(c.total_executed(), 500);
        assert_eq!(c.panics.len(), c.workers);
    }
}
