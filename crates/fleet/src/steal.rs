//! Work-stealing scheduler: per-worker deques with steal-half.
//!
//! The single-board driver's [`meander_core::par::par_map`] hands out work
//! through one shared atomic cursor — fine for a dozen units, but a fleet
//! flattens *boards × groups* jobs of wildly uneven cost (a 2-trace board
//! next to a 6-trace one), and a single cursor serializes every claim
//! through one cache line. This scheduler generalizes it to the classic
//! shape: each worker owns a deque seeded round-robin, pops locally from
//! the front, and — when dry — steals the *back half* of a victim's deque
//! in one grab. Stealing halves (rather than single jobs) keeps thieves
//! off the victims' locks: a worker that inherits a long tail serves
//! itself locally from then on.
//!
//! ## Determinism
//!
//! Scheduling decides only *who computes what when*. Every job's result
//! lands in the slot of its input index, and callers consume the slots in
//! input order — so the output vector (and everything written back from
//! it) is identical for every worker count, steal pattern, and timing, as
//! long as each job is a pure function of its input. That is the same
//! order-indexed write-back contract `par_map` established; the fleet's
//! end-to-end bit-identity tests ride on it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Scheduler observability: how the fleet's jobs moved between workers.
#[derive(Debug, Clone, Default)]
pub struct StealCounters {
    /// Workers that ran (1 for the serial fallback).
    pub workers: usize,
    /// Successful steal operations (each may move several jobs).
    pub steals: u64,
    /// Jobs moved by steals.
    pub stolen_jobs: u64,
    /// Victim probes, including empty-handed ones.
    pub steal_attempts: u64,
    /// Jobs executed per worker (index = worker id).
    pub executed: Vec<u64>,
    /// Busy time (inside job closures) per worker.
    pub busy: Vec<Duration>,
}

impl StealCounters {
    /// Total busy time across workers.
    pub fn total_busy(&self) -> Duration {
        self.busy.iter().sum()
    }

    /// Total executed jobs (must equal the scheduled job count).
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// Maps `f` over `items` on `workers` work-stealing workers, returning
/// results in input order plus the scheduler counters.
///
/// Items are seeded round-robin (item `i` starts on worker `i % workers`),
/// so a fleet's boards spread across the pool even before any stealing.
/// Falls back to a serial map for 0/1 items or 1 worker. Panics in `f`
/// propagate after all workers join.
pub fn steal_map<T, R, F>(items: &[T], workers: usize, f: F) -> (Vec<R>, StealCounters)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        let t0 = Instant::now();
        let out: Vec<R> = items.iter().map(&f).collect();
        let counters = StealCounters {
            workers: 1,
            executed: vec![n as u64],
            busy: vec![t0.elapsed()],
            ..Default::default()
        };
        return (out, counters);
    }

    // Round-robin seeding: deque w holds {i | i % workers == w}, ascending.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let remaining = AtomicUsize::new(n);
    let steals = AtomicU64::new(0);
    let stolen_jobs = AtomicU64::new(0);
    let steal_attempts = AtomicU64::new(0);

    let per_worker: Vec<(u64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let slots = &slots;
                let remaining = &remaining;
                let steals = &steals;
                let stolen_jobs = &stolen_jobs;
                let steal_attempts = &steal_attempts;
                let f = &f;
                scope.spawn(move || {
                    // Accounts a claimed job as finished even if `f`
                    // unwinds — without this, a panicking worker would
                    // leave `remaining > 0` and every other worker would
                    // spin forever instead of joining (and letting the
                    // scope propagate the panic).
                    struct DoneGuard<'a>(&'a AtomicUsize);
                    impl Drop for DoneGuard<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::Release);
                        }
                    }
                    let mut executed = 0u64;
                    let mut busy = Duration::ZERO;
                    let mut dry_rounds = 0u32;
                    loop {
                        // Local pop from the front (submission order).
                        let job = deques[w].lock().expect("deque").pop_front();
                        if let Some(i) = job {
                            dry_rounds = 0;
                            let _done = DoneGuard(remaining);
                            let t0 = Instant::now();
                            let r = f(&items[i]);
                            busy += t0.elapsed();
                            *slots[i].lock().expect("slot") = Some(r);
                            executed += 1;
                            continue;
                        }
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Dry: probe victims round-robin from our right
                        // neighbor, stealing the back half of the first
                        // non-empty deque in one grab.
                        let mut stole = false;
                        for k in 1..workers {
                            let v = (w + k) % workers;
                            steal_attempts.fetch_add(1, Ordering::Relaxed);
                            let grabbed: VecDeque<usize> = {
                                let mut victim = deques[v].lock().expect("victim deque");
                                let keep = victim.len() / 2;
                                victim.split_off(keep)
                            };
                            if grabbed.is_empty() {
                                continue;
                            }
                            steals.fetch_add(1, Ordering::Relaxed);
                            stolen_jobs.fetch_add(grabbed.len() as u64, Ordering::Relaxed);
                            let mut own = deques[w].lock().expect("deque");
                            own.extend(grabbed);
                            stole = true;
                            break;
                        }
                        if !stole {
                            // Everything queued is in flight elsewhere.
                            // Yield for a few rounds (a straggler may
                            // still spawn no new work, but finishes soon
                            // in the common case), then back off to short
                            // sleeps so a long tail job isn't contended
                            // by W−1 spinning cores.
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            dry_rounds += 1;
                            if dry_rounds < 8 {
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        }
                    }
                    (executed, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("steal worker"))
            .collect()
    });

    let out: Vec<R> = slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock")
                .expect("worker filled every claimed slot")
        })
        .collect();
    let counters = StealCounters {
        workers,
        steals: steals.into_inner(),
        stolen_jobs: stolen_jobs.into_inner(),
        steal_attempts: steal_attempts.into_inner(),
        executed: per_worker.iter().map(|(e, _)| *e).collect(),
        busy: per_worker.into_iter().map(|(_, b)| b).collect(),
    };
    (out, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for workers in [1, 2, 3, 8] {
            let (out, counters) = steal_map(&items, workers, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
            assert_eq!(counters.total_executed(), items.len() as u64);
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        let (out, c) = steal_map(&empty, 4, |&x| x);
        assert!(out.is_empty());
        assert_eq!(c.workers, 1);
        let (out, c) = steal_map(&[41u32], 4, |&x| x + 1);
        assert_eq!(out, vec![42]);
        assert_eq!(c.total_executed(), 1);
    }

    #[test]
    fn uneven_jobs_all_execute() {
        // Wildly uneven job costs: front-loaded heavy work forces the
        // round-robin seed to rebalance through steals (on a multi-core
        // host) or run through serially (1 CPU) — either way, every job
        // executes exactly once and order is preserved.
        let items: Vec<u64> = (0..64).map(|i| if i < 4 { 200_000 } else { 50 }).collect();
        let (out, counters) = steal_map(&items, 4, |&spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        assert_eq!(out.len(), 64);
        assert_eq!(counters.total_executed(), 64);
        assert_eq!(counters.executed.len(), counters.workers);
        assert_eq!(counters.busy.len(), counters.workers);
    }

    #[test]
    fn more_workers_than_jobs() {
        let items: Vec<u32> = (0..3).collect();
        let (out, counters) = steal_map(&items, 16, |&x| x + 1);
        assert_eq!(out, vec![1, 2, 3]);
        assert!(counters.workers <= 3);
        assert_eq!(counters.total_executed(), 3);
    }

    #[test]
    #[should_panic(expected = "steal worker")]
    fn panicking_job_propagates_instead_of_hanging() {
        // A job that unwinds must still count as finished (DoneGuard), so
        // the other workers drain and join, and the scope re-raises the
        // panic — rather than spinning forever on `remaining > 0`.
        let items: Vec<u32> = (0..16).collect();
        let _ = steal_map(&items, 4, |&x| {
            assert!(x != 7, "boom");
            x
        });
    }

    #[test]
    fn counters_are_consistent() {
        let items: Vec<u64> = (0..500).collect();
        let (_, c) = steal_map(&items, 4, |&x| x);
        // Every steal moved at least one job; attempts ≥ steals.
        assert!(c.steal_attempts >= c.steals);
        assert!(c.stolen_jobs >= c.steals);
        assert_eq!(c.total_executed(), 500);
    }
}
