//! Damage accounting for serving edits.
//!
//! An edit's *damage* is the set of lattice cells where the routing world
//! changed: the quantized bounding boxes of the old and the new inflated
//! obstacle geometry, computed on every stratum the retained units routed
//! under ([`meander_index::StratumKey`] — one `(cell, inflate)` lattice
//! per distinct rule derivation). Inflating with
//! `Polygon::offset_convex(stratum.inflation())` replicates exactly what
//! [`meander_core::WorldBase::build`] (and the per-trace monolithic index)
//! inserts, so the damage rect is a superset of every indexed edge's cell
//! range — the safe direction: extra cells can only flag extra units
//! dirty, never hide a real conflict.

use meander_geom::Polygon;
use meander_index::{quantize, DirtyCells, StratumKey};

/// What one [`meander_layout::Edit`] did to the session's dirty state.
///
/// Returned by `FleetSession::apply_edit` so callers can meter damage per
/// edit (the bench derives its churn numbers from these).
#[derive(Debug, Clone, Copy, Default)]
#[must_use = "the damage report says how wide the edit's blast radius is"]
pub struct DamageReport {
    /// Boards whose units can be invalidated by this edit: the referencing
    /// boards of a library-scope edit, 1 for a board-scope edit, 0 for a
    /// no-op (e.g. removing from an empty obstacle list).
    pub boards_affected: usize,
    /// Lattice cells this edit newly dirtied, summed over strata
    /// (`u64::MAX` when the edit degraded the scope to "all dirty").
    /// Zero for structural edits — they bypass cell accounting.
    pub cells_dirty: u64,
    /// `true` for [`meander_layout::Edit::is_structural`] edits: the
    /// board replans and re-routes wholesale instead of by cell overlap.
    pub structural: bool,
}

/// Adds the damage of `polys` (old and/or new *raw* obstacle polygons) to
/// `dirty`, quantized on every stratum in `strata`. Returns the dirty-cell
/// growth (a stat; containment dedup may absorb rects).
///
/// `strata` is the union over every retained unit's touched strata, so it
/// covers each unit's own lattice. When it is empty the damage cannot be
/// represented (no recorded lattice — e.g. every unit routed through the
/// unrecordable rebuild engine, or nothing routed yet): the scope degrades
/// to `mark_all`, which re-routes everything it covers. Conservative,
/// never wrong.
pub(crate) fn add_damage(dirty: &mut DirtyCells, strata: &[StratumKey], polys: &[&Polygon]) -> u64 {
    let before = dirty.cells();
    if strata.is_empty() {
        dirty.mark_all();
        return u64::MAX;
    }
    for key in strata {
        for p in polys {
            let inflated = p.offset_convex(key.inflation());
            dirty.add(*key, quantize(key.cell_size(), &inflated.bbox()));
        }
    }
    dirty.cells().saturating_sub(before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_geom::Point;

    #[test]
    fn damage_covers_the_inflated_polygon_on_every_stratum() {
        let mut dirty = DirtyCells::new();
        let strata = [StratumKey::new(4.0, 2.0), StratumKey::new(8.0, 0.0)];
        let poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let grew = add_damage(&mut dirty, &strata, &[&poly]);
        assert!(grew > 0);
        // Stratum (4, 2): inflated bbox [-2, 6] → cells [-1, 1] per axis.
        let mut probe = meander_index::CellTouches::new();
        probe.record(
            4.0,
            2.0,
            &meander_geom::Rect::new(Point::new(-2.0, -2.0), Point::new(-2.0, -2.0)),
        );
        assert!(probe.intersects(&dirty));
        // Far away on the same stratum: clean.
        let mut far = meander_index::CellTouches::new();
        far.record(
            4.0,
            2.0,
            &meander_geom::Rect::new(Point::new(100.0, 100.0), Point::new(110.0, 110.0)),
        );
        assert!(!far.intersects(&dirty));
    }

    #[test]
    fn empty_strata_degrade_to_mark_all() {
        let mut dirty = DirtyCells::new();
        let poly = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let grew = add_damage(&mut dirty, &[], &[&poly]);
        assert_eq!(grew, u64::MAX);
        assert!(dirty.is_all());
        // Any recorded touch now intersects.
        let mut t = meander_index::CellTouches::new();
        t.record(
            1.0,
            0.0,
            &meander_geom::Rect::new(Point::new(9.0, 9.0), Point::new(9.0, 9.0)),
        );
        assert!(t.intersects(&dirty));
    }
}
