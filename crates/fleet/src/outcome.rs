//! Per-board outcomes and failure types for a fleet run.
//!
//! A hardened fleet never turns one bad board into a lost batch: every
//! board comes back with a [`BoardOutcome`] saying exactly what happened
//! to it, and the healthy boards' results are untouched by their
//! neighbours' failures. The write-back contract is **atomic per board**:
//! a board is either fully [`BoardOutcome::Routed`] (all of its jobs
//! completed; geometry bit-identical to the sequential reference) or its
//! input geometry is left exactly as submitted.

use meander_layout::ValidationError;
use std::fmt;
use std::time::Duration;

/// Why a `(board, group)` job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job panicked inside the router; the worker caught it at the
    /// job boundary and survived.
    Panicked {
        /// Group index (board-local) of the panicking job.
        group: usize,
        /// Group-local index of the unit that was running when the panic
        /// unwound (`None` when the job died before reaching its first
        /// unit, e.g. in an injected pop delay).
        unit: Option<u64>,
        /// Panic payload, downcast from the usual `&str` / `String`
        /// shapes (never discarded — poison-board triage starts here).
        message: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Panicked {
                group,
                unit,
                message,
            } => match unit {
                Some(u) => write!(f, "group {group} panicked at unit {u}: {message}"),
                None => write!(f, "group {group} panicked: {message}"),
            },
        }
    }
}

impl std::error::Error for JobError {}

/// One rung of the recovery ladder (`fleet::resilience`): which engine
/// shape a failed board is re-run with. Ordered from "same knobs, just
/// again" down to the reference pipeline — every rung is a knob
/// combination an equivalence suite already proves safe (see
/// [`meander_core::EngineFallback`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeStep {
    /// Re-run with identical knobs. Recovers transient faults; output is
    /// bit-identical to the first attempt's would-be output.
    Retry,
    /// Scalar kernels + grid index ([`meander_core::EngineFallback::Scalar`]);
    /// still bit-identical.
    Scalar,
    /// Uniform height cap, no DP profile, no intra-unit parallelism
    /// ([`meander_core::EngineFallback::Simple`]); still bit-identical.
    Simple,
    /// The non-incremental reference matcher
    /// ([`meander_core::EngineFallback::Reference`]); equivalent within
    /// tolerance, not bit-identical — the last rung before quarantine.
    Reference,
}

impl DegradeStep {
    /// Short stable name for logs and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            DegradeStep::Retry => "retry",
            DegradeStep::Scalar => "scalar",
            DegradeStep::Simple => "simple",
            DegradeStep::Reference => "reference",
        }
    }
}

impl fmt::Display for DegradeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a board was shed instead of routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The admission gate's global in-flight unit budget was already
    /// spoken for; the board never ran.
    Admission,
    /// The fleet-wide retry token bucket ran dry before this board's
    /// retry could be scheduled (its failed attempts are in the journal).
    RetryTokens,
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::Admission => write!(f, "admission budget"),
            ShedReason::RetryTokens => write!(f, "retry tokens exhausted"),
        }
    }
}

/// What happened to one board of a fleet.
#[must_use = "every board outcome must be inspected or counted — dropping one silently loses a served board's fate"]
#[derive(Debug, Clone, PartialEq)]
pub enum BoardOutcome {
    /// All jobs completed; results written back, bit-identical to the
    /// sequential reference.
    Routed,
    /// Input validation rejected the board before any routing; geometry
    /// untouched.
    Rejected(ValidationError),
    /// At least one job failed (panicked); geometry untouched.
    Failed(JobError),
    /// The run's [`crate::CancelToken`] fired before every job of this
    /// board completed; geometry untouched.
    Cancelled,
    /// The fleet deadline or this board's budget expired before every job
    /// of this board completed; geometry untouched.
    DeadlineExceeded,
    /// The board failed its first attempt but recovered on retry rung
    /// `step` (`fleet::resilience`); results are written back. `attempts`
    /// counts every run including the first, so `2` means one retry.
    /// Geometry is bit-identical to sequential for every rung except
    /// [`DegradeStep::Reference`] (equivalent within tolerance there).
    Degraded {
        /// The ladder rung that recovered the board.
        step: DegradeStep,
        /// Total attempts run, including the first.
        attempts: u32,
    },
    /// Overload control refused the board ([`ShedReason`] says which
    /// budget); geometry untouched, never silently dropped.
    Shed(ShedReason),
}

impl BoardOutcome {
    /// `true` for [`BoardOutcome::Routed`].
    #[inline]
    pub fn is_routed(&self) -> bool {
        matches!(self, BoardOutcome::Routed)
    }

    /// `true` when the board's results were written back —
    /// [`BoardOutcome::Routed`] or [`BoardOutcome::Degraded`].
    #[inline]
    pub fn is_recovered(&self) -> bool {
        matches!(self, BoardOutcome::Routed | BoardOutcome::Degraded { .. })
    }
}

impl fmt::Display for BoardOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardOutcome::Routed => write!(f, "routed"),
            BoardOutcome::Rejected(e) => write!(f, "rejected: {e}"),
            BoardOutcome::Failed(e) => write!(f, "failed: {e}"),
            BoardOutcome::Cancelled => write!(f, "cancelled"),
            BoardOutcome::DeadlineExceeded => write!(f, "deadline exceeded"),
            BoardOutcome::Degraded { step, attempts } => {
                write!(f, "degraded: recovered at `{step}` on attempt {attempts}")
            }
            BoardOutcome::Shed(r) => write!(f, "shed: {r}"),
        }
    }
}

/// A log₂-bucketed latency histogram of per-job wall times.
///
/// Bucket `i` counts jobs whose latency `t` satisfies
/// `2^(i-1) µs ≤ t < 2^i µs` (bucket 0 is `< 1 µs`; the last bucket
/// absorbs everything above its floor). 32 buckets cover sub-microsecond
/// to ~35 minutes — far beyond any fleet deadline worth setting.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    /// Job counts per log₂(µs) bucket.
    pub buckets: [u64; 32],
    /// Jobs recorded.
    pub count: u64,
    /// Largest single latency seen.
    pub max: Duration,
    /// Sum of all recorded latencies.
    pub total: Duration,
}

impl LatencyHistogram {
    /// Records one job latency.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += latency;
        if latency > self.max {
            self.max = latency;
        }
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0.0–1.0), as a
    /// conservative estimate: "p99 under 4 ms" style answers from 32
    /// counters. Zero when empty.
    pub fn quantile_upper(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_micros(1u64 << i);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::from_nanos(300)); // < 1 µs → bucket 0
        h.record(Duration::from_micros(1)); // [1, 2) → bucket 1
        h.record(Duration::from_micros(3)); // [2, 4) → bucket 2
        h.record(Duration::from_micros(900)); // [512, 1024) → bucket 10
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.max, Duration::from_micros(900));
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket 4: [8, 16)
        }
        h.record(Duration::from_millis(8)); // bucket 13: [4096, 8192)
        assert_eq!(h.quantile_upper(0.5), Duration::from_micros(16));
        assert_eq!(h.quantile_upper(0.99), Duration::from_micros(16));
        assert_eq!(h.quantile_upper(1.0), Duration::from_micros(1 << 13));
        assert!(h.mean() >= Duration::from_micros(10));
        // Empty histogram answers zero everywhere.
        let empty = LatencyHistogram::default();
        assert_eq!(empty.mean(), Duration::ZERO);
        assert_eq!(empty.quantile_upper(0.99), Duration::ZERO);
    }

    #[test]
    fn histogram_absorbs_extremes_without_panicking() {
        let mut h = LatencyHistogram::default();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(86_400)); // a day → clamped to last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[31], 1);
    }

    #[test]
    fn outcome_display() {
        assert_eq!(BoardOutcome::Routed.to_string(), "routed");
        assert_eq!(BoardOutcome::Cancelled.to_string(), "cancelled");
        assert_eq!(
            BoardOutcome::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        let failed = BoardOutcome::Failed(JobError::Panicked {
            group: 2,
            unit: None,
            message: "boom".into(),
        });
        assert_eq!(failed.to_string(), "failed: group 2 panicked: boom");
        let failed_at = BoardOutcome::Failed(JobError::Panicked {
            group: 2,
            unit: Some(3),
            message: "boom".into(),
        });
        assert_eq!(
            failed_at.to_string(),
            "failed: group 2 panicked at unit 3: boom"
        );
        assert!(BoardOutcome::Routed.is_routed());
        assert!(!failed.is_routed());
        let degraded = BoardOutcome::Degraded {
            step: DegradeStep::Scalar,
            attempts: 3,
        };
        assert_eq!(
            degraded.to_string(),
            "degraded: recovered at `scalar` on attempt 3"
        );
        assert!(degraded.is_recovered() && !degraded.is_routed());
        assert_eq!(
            BoardOutcome::Shed(ShedReason::Admission).to_string(),
            "shed: admission budget"
        );
        assert_eq!(
            BoardOutcome::Shed(ShedReason::RetryTokens).to_string(),
            "shed: retry tokens exhausted"
        );
    }

    #[test]
    fn degrade_steps_are_ordered_and_named() {
        assert!(DegradeStep::Retry < DegradeStep::Scalar);
        assert!(DegradeStep::Scalar < DegradeStep::Simple);
        assert!(DegradeStep::Simple < DegradeStep::Reference);
        let names: Vec<&str> = [
            DegradeStep::Retry,
            DegradeStep::Scalar,
            DegradeStep::Simple,
            DegradeStep::Reference,
        ]
        .iter()
        .map(|s| s.name())
        .collect();
        assert_eq!(names, ["retry", "scalar", "simple", "reference"]);
    }
}
