//! Content-addressed result cache: routed group geometry keyed by what
//! the router *sees*, proven exact by determinism.
//!
//! ## Why a hit is indistinguishable from a re-route
//!
//! The engine is deterministic and bit-identical across every proven
//! knob (PR 1–8: worker count, sharing mode, batch kernels, index kind,
//! DP profile). A routed group is therefore a pure function of
//!
//! * the obstacle library's content ([`CacheKey::library_root`] — a
//!   Merkle root, [`meander_layout::hash::LibraryCommitment`]),
//! * the board's local content ([`CacheKey::board_local_hash`] —
//!   [`meander_layout::hash::hash_board_local`], which pins the trace id
//!   space, every centerline, every local obstacle, and the group list),
//! * the group's own content and position ([`CacheKey::group_hash`]),
//! * the rules its units carry plus the *output-affecting* engine knobs
//!   ([`CacheKey::rules_hash`], [`engine_identity`]).
//!
//! Equal keys ⇒ identical router input ⇒ (determinism) identical routed
//! floats. So serving a cached entry is not an approximation that needs a
//! tolerance — it is the same bit stream the router would produce,
//! property-tested in `tests/cache.rs` (cache-on vs cache-off,
//! bit-compared across worker counts and sharing modes).
//!
//! Knobs that are *proven* bit-identical (batch kernels, index kind, DP
//! profile, parallelism, sharing) are deliberately excluded from
//! [`engine_identity`], so feature rows share entries; knobs that change
//! the output (tolerance, iteration budgets, the non-incremental
//! fallback engine) are folded in, so a config change can never serve a
//! stale shape.
//!
//! ## Invalidation composes with damage tracking
//!
//! Keys are content-addressed, so a stale entry is *unreachable* by
//! construction — correctness never depends on eviction. Precision does:
//! a library edit moves `library_root`, which would orphan every entry
//! under the old root. Instead of abandoning them,
//! [`ResultCache::apply_library_edit`] walks the old root's entries with
//! the edit's damage (PR 8's [`DirtyCells`]) and the per-entry touched
//! cells recorded at insert time:
//!
//! * touches ∩ damage ≠ ∅ → **evicted** (the edit may have changed what
//!   a candidate query answered);
//! * touches ∩ damage = ∅ → **re-keyed** to the new root — by the
//!   serving session's soundness argument the entry's units would replay
//!   bit-identically against the edited library, so the bytes stored
//!   under the old root are exactly what a re-route under the new root
//!   would produce.
//!
//! Board-local edits do the same along `board_local_hash`
//! ([`ResultCache::apply_board_edit`]); structural edits drop the edited
//! board's keys wholesale ([`ResultCache::drop_board`]). The
//! invalidation-precision counters ([`CacheStats::invalidated`],
//! [`CacheStats::rekeyed`]) are what the bench asserts on.

use meander_core::{CellTouches, DirtyCells, ExtendConfig, TraceReport, UnitInput, UnitOutput};
use meander_geom::Polyline;
use meander_layout::hash::{hash_board_local, hash_group, hash_rules, library_root, ContentHasher};
use meander_layout::{LibraryBoard, TraceId};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What a routed group is a function of. Two jobs with equal keys are
/// identical router inputs (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Merkle root of the referenced obstacle library's content.
    pub library_root: u64,
    /// Units' rule sets (in unit order) + output-affecting engine knobs.
    pub rules_hash: u64,
    /// The board's local content digest.
    pub board_local_hash: u64,
    /// The group's content, its board-local index, and its resolved
    /// target.
    pub group_hash: u64,
}

/// One cached unit: the geometry it writes back, its report floats, and
/// the cell set its candidate queries touched (recorded at insert time —
/// the handle invalidation tests entries with).
#[derive(Debug, Clone)]
pub struct CachedUnit {
    updates: Vec<(TraceId, Polyline)>,
    reports: Vec<TraceReport>,
    touches: CellTouches,
}

impl CachedUnit {
    /// Captures a routed unit's output and recorded touches.
    pub fn new(out: &UnitOutput, touches: CellTouches) -> CachedUnit {
        CachedUnit {
            updates: out.updates().to_vec(),
            reports: out.reports().to_vec(),
            touches,
        }
    }

    /// Replays the unit as an output. Busy time is zero: a hit does no
    /// routing work (wall-clock fields are excluded from bit-identity).
    pub fn to_output(&self) -> UnitOutput {
        UnitOutput::from_parts(Duration::ZERO, self.updates.clone(), self.reports.clone())
    }

    /// The touched-cell set recorded when the unit routed.
    pub fn touches(&self) -> &CellTouches {
        &self.touches
    }
}

/// One cached group: per-unit results in unit order.
#[derive(Debug, Clone)]
pub struct CachedGroup {
    units: Vec<CachedUnit>,
    /// Approximate heap footprint, charged against the byte budget.
    bytes: usize,
}

impl CachedGroup {
    /// Bundles a routed group's units.
    pub fn new(units: Vec<CachedUnit>) -> CachedGroup {
        let bytes = units
            .iter()
            .map(|u| {
                let geometry: usize = u
                    .updates
                    .iter()
                    .map(|(_, pl)| 16 * pl.points().len() + 24)
                    .sum();
                // Reports are 5 words each; touches ~4 words per rect.
                geometry + 40 * u.reports.len() + 32 * u.touches.rect_count() + 64
            })
            .sum();
        CachedGroup { units, bytes }
    }

    /// The cached units, in unit order.
    pub fn units(&self) -> &[CachedUnit] {
        &self.units
    }

    /// Estimated heap bytes this entry holds.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    fn touches_intersect(&self, dirty: &DirtyCells) -> bool {
        self.units.iter().any(|u| u.touches.intersects(dirty))
    }
}

/// Hit/miss/churn counters, cumulative over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (an insert over an existing key is a no-op and
    /// does not count).
    pub inserts: u64,
    /// Entries evicted by the byte-budget LRU.
    pub evictions: u64,
    /// Entries evicted by edit invalidation (their touches intersected
    /// the damage, or their board was structurally edited).
    pub invalidated: u64,
    /// Entries that survived an edit and were re-keyed to the new
    /// root/digest (their touches missed the damage).
    pub rekeyed: u64,
}

#[derive(Debug)]
struct Entry {
    /// `Arc` so a lookup hands out a handle instead of cloning the
    /// group's geometry — per-unit packets consult the same entry once
    /// per unit, which would otherwise clone the whole group each time.
    value: Arc<CachedGroup>,
    /// LRU clock stamp of the last lookup or insert.
    used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
    clock: u64,
    stats: CacheStats,
}

/// A byte-budgeted, LRU-evicting result cache, shared across fleets and
/// sessions behind an `Arc` (interior mutability; every method takes
/// `&self`).
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    budget: usize,
}

/// Default byte budget: enough for tens of thousands of serving-size
/// group entries.
pub const DEFAULT_CACHE_BUDGET: usize = 256 << 20;

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_CACHE_BUDGET)
    }
}

impl ResultCache {
    /// An empty cache holding at most ~`budget` bytes of entries.
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            budget,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A panic while holding this mutex can only come from OOM inside
        // clone/insert; recover the map rather than poisoning every
        // future fleet run.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The entry under `key`, counting a hit or miss. The returned handle
    /// shares the stored group (no geometry is cloned).
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<CachedGroup>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.used = clock;
                let value = Arc::clone(&e.value);
                inner.stats.hits += 1;
                Some(value)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `value` under `key` unless present (content-addressed
    /// entries are immutable: an existing entry already holds these
    /// bytes). Evicts least-recently-used entries if the budget
    /// overflows. Returns `true` when the entry was actually inserted.
    pub fn insert(&self, key: CacheKey, value: CachedGroup) -> bool {
        let mut inner = self.lock();
        if inner.map.contains_key(&key) {
            return false;
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.bytes += value.bytes;
        inner.map.insert(
            key,
            Entry {
                value: Arc::new(value),
                used: clock,
            },
        );
        inner.stats.inserts += 1;
        while inner.bytes > self.budget && inner.map.len() > 1 {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            if let Some(e) = inner.map.remove(&lru) {
                inner.bytes -= e.value.bytes;
                inner.stats.evictions += 1;
            }
        }
        true
    }

    /// `true` when `key` has an entry (no counter side effects).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.lock().map.contains_key(key)
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// `true` when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes currently held.
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// A library's content moved `old_root → new_root` with `damage`
    /// (the quantized old+new geometry of the edited obstacles). Entries
    /// under `old_root` whose touches intersect the damage are evicted;
    /// the rest are re-keyed to `new_root` — sound because a unit whose
    /// candidate queries never saw the damaged cells replays
    /// bit-identically against the edited library (module docs).
    pub fn apply_library_edit(&self, old_root: u64, new_root: u64, damage: &DirtyCells) {
        if old_root == new_root {
            return;
        }
        self.retarget(
            |k| k.library_root == old_root,
            |k| CacheKey {
                library_root: new_root,
                ..k
            },
            damage,
        );
    }

    /// A board's local content moved `old_hash → new_hash` under
    /// obstacle-edit damage — same evict/re-key walk as
    /// [`ResultCache::apply_library_edit`], along the board component.
    /// Callers must only use this for *non-structural* edits (obstacle
    /// churn): structural edits change the planned units themselves and
    /// must go through [`ResultCache::drop_board`].
    pub fn apply_board_edit(&self, old_hash: u64, new_hash: u64, damage: &DirtyCells) {
        if old_hash == new_hash {
            return;
        }
        self.retarget(
            |k| k.board_local_hash == old_hash,
            |k| CacheKey {
                board_local_hash: new_hash,
                ..k
            },
            damage,
        );
    }

    /// Drops every entry of board content `board_local_hash` (structural
    /// edit: the board's unit plan itself changed, so no entry under the
    /// old digest can be re-keyed). Counted as invalidated.
    pub fn drop_board(&self, board_local_hash: u64) {
        let mut inner = self.lock();
        let doomed: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|k| k.board_local_hash == board_local_hash)
            .copied()
            .collect();
        for k in doomed {
            if let Some(e) = inner.map.remove(&k) {
                inner.bytes -= e.value.bytes;
                inner.stats.invalidated += 1;
            }
        }
    }

    fn retarget(
        &self,
        selects: impl Fn(&CacheKey) -> bool,
        rekey: impl Fn(CacheKey) -> CacheKey,
        damage: &DirtyCells,
    ) {
        let mut inner = self.lock();
        let affected: Vec<CacheKey> = inner.map.keys().filter(|k| selects(k)).copied().collect();
        for k in affected {
            let Some(entry) = inner.map.remove(&k) else {
                continue;
            };
            if entry.value.touches_intersect(damage) {
                inner.bytes -= entry.value.bytes;
                inner.stats.invalidated += 1;
            } else {
                inner.stats.rekeyed += 1;
                // The new key may already hold an entry (a twin board
                // re-inserted first); keep the existing one.
                let new_key = rekey(k);
                let dropped = match inner.map.entry(new_key) {
                    MapEntry::Occupied(_) => Some(entry.value.bytes),
                    MapEntry::Vacant(v) => {
                        v.insert(entry);
                        None
                    }
                };
                if let Some(bytes) = dropped {
                    inner.bytes -= bytes;
                }
            }
        }
    }
}

/// Digest of the *output-affecting* engine knobs. Folded into
/// [`CacheKey::rules_hash`] so a config change can never serve a stale
/// shape. Knobs proven bit-identical (batch kernels, index kind, DP
/// profile, `parallel`, library sharing, worker count) are excluded —
/// feature rows and worker counts share entries by design.
pub fn engine_identity(extend: &ExtendConfig) -> u64 {
    let mut h = ContentHasher::new(0x656e_6769_6e65_0000); // "engine"
    match extend.ldisc {
        None => {
            h.u64(0);
        }
        Some(l) => {
            h.u64(1).f64(l);
        }
    }
    h.u64(extend.max_points_per_segment as u64)
        .u64(extend.max_width_steps as u64)
        .f64(extend.tolerance)
        .u64(extend.max_iterations as u64)
        .u64(extend.connect_priority as u64)
        .u64(extend.requeue as u64)
        .f64(extend.requeue_min_protect)
        .u64(extend.incremental as u64);
    h.finish()
}

/// [`CacheKey::rules_hash`] for a planned group: the units' rule sets in
/// unit order, folded with [`engine_identity`].
pub fn rules_key(units: &[UnitInput], extend: &ExtendConfig) -> u64 {
    let mut h = ContentHasher::new(0x756e_6974_7275_6c65); // "unitrule"
    h.u64(engine_identity(extend));
    h.len(units.len());
    for u in units {
        h.u64(hash_rules(u.rules()));
    }
    h.finish()
}

/// [`CacheKey::group_hash`] for group `index` of a board: the group's
/// content digest, its board-local position (two content-equal groups at
/// different indices are distinct jobs), and its resolved target.
pub fn group_key(group: &meander_layout::MatchGroup, index: usize, target: f64) -> u64 {
    let mut h = ContentHasher::new(0x6a6f_6267_726f_7570); // "jobgroup"
    h.u64(hash_group(group)).u64(index as u64).f64(target);
    h.finish()
}

/// The cache keys of every group of `lb`, in group order — what the
/// engine derives per job, exposed for benches and tests that need to
/// probe specific entries.
pub fn board_keys(lb: &LibraryBoard, extend: &ExtendConfig) -> Vec<CacheKey> {
    let root = library_root(lb.library());
    let local = hash_board_local(lb.board());
    meander_core::plan_board_units(lb.board())
        .into_iter()
        .enumerate()
        .map(|(g, (target, units))| CacheKey {
            library_root: root,
            rules_hash: rules_key(&units, extend),
            board_local_hash: local,
            group_hash: group_key(&lb.board().groups()[g], g, target),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey {
            library_root: 1,
            rules_hash: 2,
            board_local_hash: 3,
            group_hash: n,
        }
    }

    fn entry_of_bytes(points: usize) -> CachedGroup {
        let pl = Polyline::new(
            (0..points.max(2))
                .map(|i| meander_geom::Point::new(i as f64, 0.0))
                .collect(),
        );
        let out = UnitOutput::from_parts(
            Duration::ZERO,
            vec![(TraceId(0), pl)],
            vec![TraceReport {
                id: TraceId(0),
                initial: 1.0,
                achieved: 2.0,
                patterns: 3,
                via_msdtw: false,
            }],
        );
        CachedGroup::new(vec![CachedUnit::new(&out, CellTouches::new())])
    }

    #[test]
    fn hit_miss_insert_counters() {
        let cache = ResultCache::default();
        assert!(cache.lookup(&key(1)).is_none());
        assert!(cache.insert(key(1), entry_of_bytes(4)));
        assert!(cache.lookup(&key(1)).is_some());
        // Double insert is a no-op.
        assert!(!cache.insert(key(1), entry_of_bytes(4)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(cache.len(), 1);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn lru_respects_byte_budget() {
        let one = entry_of_bytes(64).bytes();
        let cache = ResultCache::new(3 * one + one / 2);
        for n in 0..4 {
            cache.insert(key(n), entry_of_bytes(64));
            // Touch 0 so it stays warm.
            let _ = cache.lookup(&key(0));
        }
        assert!(cache.bytes() <= 3 * one + one / 2);
        assert!(cache.stats().evictions >= 1);
        // 0 was kept warm; the eviction fell on a colder key.
        assert!(cache.contains(&key(0)));
    }

    #[test]
    fn library_edit_evicts_intersecting_and_rekeys_the_rest() {
        let cache = ResultCache::default();
        // Entry A touches cells near the damage; entry B far away.
        let mut touched = CellTouches::new();
        touched.record(
            8.0,
            4.0,
            &meander_geom::Rect::new(
                meander_geom::Point::new(0.0, 0.0),
                meander_geom::Point::new(16.0, 16.0),
            ),
        );
        let mut far = CellTouches::new();
        far.record(
            8.0,
            4.0,
            &meander_geom::Rect::new(
                meander_geom::Point::new(800.0, 800.0),
                meander_geom::Point::new(816.0, 816.0),
            ),
        );
        let out = UnitOutput::from_parts(Duration::ZERO, Vec::new(), Vec::new());
        cache.insert(
            key(1),
            CachedGroup::new(vec![CachedUnit::new(&out, touched)]),
        );
        cache.insert(key(2), CachedGroup::new(vec![CachedUnit::new(&out, far)]));

        let mut damage = DirtyCells::new();
        damage.add(
            meander_core::StratumKey::new(8.0, 4.0),
            meander_index::quantize(
                8.0,
                &meander_geom::Rect::new(
                    meander_geom::Point::new(4.0, 4.0),
                    meander_geom::Point::new(12.0, 12.0),
                ),
            ),
        );
        cache.apply_library_edit(1, 99, &damage);
        let s = cache.stats();
        assert_eq!(s.invalidated, 1);
        assert_eq!(s.rekeyed, 1);
        // The survivor answers under the new root, not the old.
        assert!(cache.contains(&CacheKey {
            library_root: 99,
            ..key(2)
        }));
        assert!(!cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
    }

    #[test]
    fn drop_board_removes_only_that_content() {
        let cache = ResultCache::default();
        cache.insert(key(1), entry_of_bytes(4));
        let other = CacheKey {
            board_local_hash: 77,
            ..key(1)
        };
        cache.insert(other, entry_of_bytes(4));
        cache.drop_board(3);
        assert!(!cache.contains(&key(1)));
        assert!(cache.contains(&other));
        assert_eq!(cache.stats().invalidated, 1);
    }
}
