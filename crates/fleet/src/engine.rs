//! The batch engine: validate, flatten a [`BoardSet`] into per-unit work
//! packets, route them on the priority-bucketed scheduler under panic
//! isolation and deadlines, write back per board atomically.
//!
//! ## Packet model
//!
//! The unit of scheduling is one **matching unit** (a trace or a
//! differential pair) of one group of one board — fine enough that an
//! interactive re-route preempting a batch fleet waits out at most one
//! unit per worker, and fine enough that a single skewed board spreads
//! across the pool. Each packet snapshots its inputs (unit plan, shared
//! base, obstacle overlay, cache seam) and runs through the same
//! [`meander_core::run_unit_shared`] the single-board driver uses; the
//! `(board, group)` **job** survives as write-back metadata (a group's
//! packets reassemble in unit order before [`meander_core::apply_outputs`]).
//! Fleets submit their packets at [`crate::sched::Tier::Batch`]; the
//! speculative warm-up producer ([`warm_fleet_cache`]) submits at
//! [`crate::sched::Tier::Speculative`].
//!
//! ## Failure domains
//!
//! A fleet is a *serving* workload: one malformed or crashing board must
//! cost exactly one board. Four mechanisms enforce that, in request
//! order:
//!
//! 1. **Typed validation up front.** With [`FleetConfig::validate`] (on
//!    by default) every distinct library is validated once and every
//!    board once ([`meander_layout::validate_board`]); failures become
//!    [`BoardOutcome::Rejected`] with provenance, and the board is never
//!    planned — malformed input cannot reach the router.
//! 2. **Panic isolation.** Each job runs under `catch_unwind`
//!    ([`crate::steal::steal_try_map`]); a panicking job yields
//!    [`BoardOutcome::Failed`] for its board, the worker survives, and
//!    every other job's result is untouched.
//! 3. **Deadlines and cancellation.** A shared [`CancelToken`], a fleet
//!    [`FleetConfig::deadline`], and a per-board busy
//!    [`FleetConfig::board_budget`] are polled at pop boundaries and
//!    between units; affected boards report [`BoardOutcome::Cancelled`] /
//!    [`BoardOutcome::DeadlineExceeded`].
//! 4. **Atomic per-board write-back.** A board is either fully
//!    [`BoardOutcome::Routed`] (all its jobs completed) or its geometry
//!    is exactly as submitted — never a half-routed hybrid.
//!
//! ## Library sharing
//!
//! Boards reference an immutable [`meander_layout::ObstacleLibrary`]. With
//! [`FleetConfig::share_library`] the engine builds one
//! [`WorldBase`] per distinct library — the library's polygons inflated
//! and edge-indexed **once** — and every trace of every board overlays its
//! per-trace remainder on it, instead of re-indexing the library's
//! geometry per trace. With it off, each board materializes `library ++
//! local` obstacles and routes exactly like a standalone board (the
//! baseline the bench compares against).
//!
//! ## Determinism
//!
//! Fleet output is **bit-identical** to routing each board's materialized
//! twin ([`meander_layout::LibraryBoard::to_board`]) through
//! [`meander_core::match_all_groups`] sequentially:
//!
//! * jobs snapshot their inputs up front and are pure functions of them
//!   (no job reads another's write-back — sound under the model invariant
//!   that a trace belongs to at most one group);
//! * the scheduler only moves *where* a job runs; results land in
//!   input-order slots and write back in `(board, group, unit)` order;
//! * the shared-library world answers every spatial query identically to
//!   the monolithic per-trace index (`meander_index::OverlayIndex`'s
//!   union-equals-monolithic contract), so the routed floats themselves
//!   are the same stream.
//!
//! The identity extends **per board under faults**: a panicking,
//! rejected, or halted board affects only itself, so every `Routed`
//! board's geometry still matches its sequential twin bit for bit
//! (property-tested in `tests/chaos.rs` under `--features fault`).
//! Injected faults key on *input-order* indices, never execution order,
//! so which unit fails is itself invariant across worker counts.
//!
//! Wall-clock fields ([`GroupReport::runtime`], [`FleetStats`] timings)
//! are measurements, not outputs — they are excluded from the identity.

use crate::cache::{self, CacheKey, CachedGroup, CachedUnit, ResultCache};
use crate::cancel::CancelToken;
#[cfg(feature = "fault")]
use crate::fault::FaultPlan;
use crate::outcome::{BoardOutcome, JobError, LatencyHistogram};
use crate::sched::{run_packets, SchedCounters, Scheduler, Tier};
use crate::steal::{JobStatus, StealCounters};
use meander_core::context::{obstacle_inflation, world_cell};
use meander_core::{
    apply_outputs, gather_obstacles, plan_unit_packets, run_unit_shared, run_unit_shared_recorded,
    CellTouches, DesignRules, ExtendConfig, GroupReport, IndexKind, PlannedUnit, UnitInput,
    UnitOutput, WorldBase,
};
use meander_geom::Polygon;
use meander_layout::hash::{hash_board_local, library_root};
use meander_layout::{
    validate_board, validate_library, LibraryBoard, ObstacleLibrary, ValidationError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A fleet of boards, each referencing a shared obstacle library.
///
/// Boards may reference *different* libraries (the engine builds one
/// shared world per distinct library); the common case is one library
/// across the whole set.
#[derive(Debug, Clone, Default)]
pub struct BoardSet {
    boards: Vec<LibraryBoard>,
}

impl BoardSet {
    /// Wraps a fleet of library-referencing boards.
    pub fn new(boards: Vec<LibraryBoard>) -> Self {
        BoardSet { boards }
    }

    /// The boards.
    #[inline]
    pub fn boards(&self) -> &[LibraryBoard] {
        &self.boards
    }

    /// Mutable board access (the engine writes results back here).
    #[inline]
    pub fn boards_mut(&mut self) -> &mut [LibraryBoard] {
        &mut self.boards
    }

    /// Number of boards.
    #[inline]
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// `true` when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }
}

/// Tunables of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-unit engine configuration (index kind, batch kernels, DP
    /// profile, …). The fleet scheduler replaces the driver-level fan-out,
    /// so [`ExtendConfig::parallel`] only gates the intra-pop side-context
    /// worker pair here.
    pub extend: ExtendConfig,
    /// Worker count; `None` uses the host's available parallelism.
    pub workers: Option<usize>,
    /// Build each distinct obstacle library's world once and overlay it
    /// per trace (`true`, the point of the fleet), or materialize
    /// `library ++ local` per board and index per trace like standalone
    /// boards (`false` — the amortization-off baseline). Output is
    /// bit-identical either way.
    pub share_library: bool,
    /// Validate every library and board before routing (`true`, the
    /// default). Invalid boards come back [`BoardOutcome::Rejected`] with
    /// a typed, provenance-carrying error and are never planned. Turning
    /// this off skips the pre-flight scan for inputs already known valid
    /// (e.g. generated by this process); malformed input may then panic
    /// inside the router — which isolation converts to
    /// [`BoardOutcome::Failed`], so the process still survives.
    pub validate: bool,
    /// Whole-fleet wall-clock budget, measured from [`route_fleet`]
    /// entry. Once exceeded, workers stop claiming jobs; boards that lost
    /// work report [`BoardOutcome::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Per-board *busy* budget: the sum of a board's unit runtimes. A
    /// board over budget stops at the next unit boundary and reports
    /// [`BoardOutcome::DeadlineExceeded`]; other boards are unaffected.
    pub board_budget: Option<Duration>,
    /// Cooperative cancellation. Fire the token (from any thread) and
    /// the fleet stops within one unit's work per worker; boards that
    /// lost work report [`BoardOutcome::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Content-addressed result cache ([`crate::cache`]). When set, every
    /// `(board, group)` job derives its [`CacheKey`] and consults the
    /// cache before routing: a hit writes the cached geometry and report
    /// floats back (bit-identical to re-routing, by determinism); a miss
    /// routes with touched-cell recording and inserts. Panicked or halted
    /// jobs never insert. Share one cache across fleets and sessions via
    /// the `Arc`.
    pub cache: Option<Arc<ResultCache>>,
    /// Shared priority-bucketed scheduler ([`crate::sched`]). When set,
    /// the fleet's packets run on it at [`Tier::Batch`] (its worker count
    /// wins over [`FleetConfig::workers`]) and interleave with whatever
    /// other tiers are in flight — an attached serving session's
    /// interactive packets preempt at packet boundaries. When `None`, the
    /// run uses a private pool (or an inline serial loop for one worker);
    /// output is bit-identical either way.
    pub sched: Option<Arc<Scheduler>>,
    /// Scripted faults for chaos testing (`fault` feature only —
    /// production builds don't carry the field).
    #[cfg(feature = "fault")]
    pub fault: FaultPlan,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            extend: ExtendConfig::default(),
            workers: None,
            share_library: true,
            validate: true,
            deadline: None,
            board_budget: None,
            cancel: None,
            cache: None,
            sched: None,
            #[cfg(feature = "fault")]
            fault: FaultPlan::default(),
        }
    }
}

/// Scheduler, sharing, and failure observability for one fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Boards submitted.
    pub boards: usize,
    /// `(board, group)` jobs scheduled (rejected boards plan no jobs).
    pub jobs: usize,
    /// Matching units (traces / pairs) across all scheduled jobs.
    pub units: usize,
    /// Units that actually ran to completion (< `units` when jobs
    /// panicked, halted, or were never claimed).
    pub units_run: usize,
    /// Distinct obstacle libraries encountered.
    pub libraries: usize,
    /// Total polygons across those libraries.
    pub library_polygons: usize,
    /// Boards fully routed and written back.
    pub routed: usize,
    /// Boards rejected by validation.
    pub rejected: usize,
    /// Boards with at least one panicked job.
    pub failed: usize,
    /// Boards that lost work to the cancel token.
    pub cancelled: usize,
    /// Boards that lost work to the fleet deadline or their busy budget.
    pub deadline_exceeded: usize,
    /// Boards recovered by a retry rung ([`BoardOutcome::Degraded`]).
    /// Always zero for a bare [`route_fleet`]; the resilience layer fills
    /// it in.
    pub degraded: usize,
    /// Boards refused by overload control ([`BoardOutcome::Shed`]).
    /// Always zero for a bare [`route_fleet`].
    pub shed: usize,
    /// Retry runs performed beyond each board's first attempt. Always
    /// zero for a bare [`route_fleet`].
    pub retries: u64,
    /// Units whose touched-cell set intersected the damage of the edits a
    /// serving re-route consumed (plus units of structurally edited
    /// boards) — the units that actually re-ran. Always zero for a bare
    /// [`route_fleet`]; `FleetSession::reroute_dirty` fills it in.
    pub units_dirty: usize,
    /// Units proven untouched by the damage and skipped (retained outputs
    /// reused). Always zero for a bare [`route_fleet`].
    pub units_skipped: usize,
    /// Lattice cells covered by the consumed dirty sets, summed over
    /// libraries, boards, and strata. Always zero for a bare
    /// [`route_fleet`].
    pub cells_dirty: u64,
    /// Unit packets served from [`FleetConfig::cache`] this run. Zero
    /// when no cache is attached. Counters are observability, not
    /// outputs: which packet hits can vary with scheduling (a twin
    /// inserted earlier in the run), the routed bytes cannot.
    pub cache_hits: u64,
    /// Unit packets that consulted the cache and routed fresh (a group
    /// whose every unit routed fresh then inserts). Zero when no cache is
    /// attached.
    pub cache_misses: u64,
    /// Boards whose unit plan was rebuilt this serving cycle (structural
    /// edit or first route). Always zero for a bare [`route_fleet`];
    /// `FleetSession::reroute_dirty` fills it in — and scopes it to the
    /// structurally edited boards only.
    pub boards_replanned: usize,
    /// Busy time charged to each board (unit runtimes, indexed by
    /// submission order) — the per-board slice of the scheduler's busy
    /// total, and the quantity [`FleetConfig::board_budget`] meters.
    pub board_busy: Vec<Duration>,
    /// Time spent in the up-front validation scan (zero when
    /// [`FleetConfig::validate`] is off).
    pub validation_wall: Duration,
    /// Time spent building the shared [`WorldBase`]s (zero when
    /// `share_library` is off) — the cost that is paid once instead of
    /// per trace.
    pub base_build: Duration,
    /// Wall clock of the scheduled phase (planning + routing + write-back
    /// excluded: this is the pool's span).
    pub route_wall: Duration,
    /// Per-unit-packet wall-time histogram (packets that ran to
    /// completion, cached replays included; halted packets are not
    /// recorded).
    pub latency: LatencyHistogram,
    /// Worker-level counters of this run (workers, steals, per-worker
    /// busy/panics).
    pub scheduler: StealCounters,
    /// Bucket and monitor counters over this run's window: per-bucket
    /// packets executed and peak occupancy, park/unpark, preemptions
    /// ([`crate::sched`]). With a private pool this is the run's exact
    /// accounting; on a shared [`FleetConfig::sched`] concurrent tiers'
    /// packets land in whichever run's window they completed. All
    /// cross-worker counters (steals, preemptions) read zero on a 1-CPU
    /// host.
    pub sched: SchedCounters,
}

/// One fleet run's results: per-board outcomes and group reports (board
/// order, group order — exactly what per-board
/// [`meander_core::match_all_groups`] returns for routed boards) plus the
/// run's stats.
#[must_use = "a fleet report carries every board's outcome — dropping it loses failures silently"]
#[derive(Debug)]
pub struct FleetReport {
    /// `reports[b]` are board `b`'s group reports; empty unless
    /// `outcomes[b]` is [`BoardOutcome::Routed`] (or
    /// [`BoardOutcome::Degraded`] under the resilience layer).
    pub reports: Vec<Vec<GroupReport>>,
    /// `outcomes[b]` says what happened to board `b`.
    pub outcomes: Vec<BoardOutcome>,
    /// Scheduler / sharing / failure observability.
    pub stats: FleetStats,
}

impl FleetReport {
    /// `true` when every board routed.
    pub fn all_routed(&self) -> bool {
        self.outcomes.iter().all(BoardOutcome::is_routed)
    }

    /// One-line run summary for log ingestion: every outcome counter, the
    /// unit completion ratio, and the latency tail, in a stable
    /// `key=value` format.
    pub fn summary(&self) -> String {
        let s = &self.stats;
        let considered = s.units_dirty + s.units_skipped;
        let skip_rate = if considered > 0 {
            100.0 * s.units_skipped as f64 / considered as f64
        } else {
            0.0
        };
        format!(
            "fleet boards={} routed={} degraded={} rejected={} failed={} \
             cancelled={} deadline={} shed={} retries={} units={}/{} \
             dirty={} skipped={} cells_dirty={} skip_rate={:.1}% \
             replanned={} wall={:.3?} p99={:.3?} \
             packets_interactive={} packets_batch={} packets_speculative={} \
             peak_interactive={} peak_batch={} peak_speculative={} \
             parks={} unparks={} preemptions={} steals={}",
            s.boards,
            s.routed,
            s.degraded,
            s.rejected,
            s.failed,
            s.cancelled,
            s.deadline_exceeded,
            s.shed,
            s.retries,
            s.units_run,
            s.units,
            s.units_dirty,
            s.units_skipped,
            s.cells_dirty,
            skip_rate,
            s.boards_replanned,
            s.route_wall,
            s.latency.quantile_upper(0.99),
            s.sched.packets[Tier::Interactive.index()],
            s.sched.packets[Tier::Batch.index()],
            s.sched.packets[Tier::Speculative.index()],
            s.sched.peak_pending[Tier::Interactive.index()],
            s.sched.peak_pending[Tier::Batch.index()],
            s.sched.peak_pending[Tier::Speculative.index()],
            s.sched.parks,
            s.sched.unparks,
            s.sched.preemptions,
            s.sched.steals,
        )
    }
}

/// Per-`(library, rules-derived lattice)` [`WorldBase`] cache.
///
/// Keyed on a caller-chosen library identity `K` (the engine uses the
/// `Arc` pointer, the serving session its stable library slot) plus the
/// bit patterns of the two floats [`WorldBase::compatible`] checks — the
/// lattice cell and obstacle inflation derived from a rule set. Rule sets
/// that derive the same floats share one base; a rules edit lands on a new
/// key and builds (once) on demand.
pub(crate) struct BaseCache<K> {
    entries: Vec<((K, u64, u64), Arc<WorldBase>)>,
    build_time: Duration,
}

impl<K: PartialEq + Copy> BaseCache<K> {
    pub(crate) fn new() -> Self {
        BaseCache {
            entries: Vec::new(),
            build_time: Duration::ZERO,
        }
    }

    fn key(lib: K, rules: &DesignRules) -> (K, u64, u64) {
        (
            lib,
            world_cell(rules).to_bits(),
            obstacle_inflation(rules).to_bits(),
        )
    }

    /// The cached base compatible with `rules`, if one was built.
    pub(crate) fn lookup(&self, lib: K, rules: &DesignRules) -> Option<Arc<WorldBase>> {
        let key = Self::key(lib, rules);
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, b)| Arc::clone(b))
    }

    /// Cached or freshly built base for `(lib, rules)`.
    pub(crate) fn get_or_build(
        &mut self,
        lib: K,
        rules: &DesignRules,
        library: &ObstacleLibrary,
        kind: IndexKind,
    ) -> Arc<WorldBase> {
        let key = Self::key(lib, rules);
        if let Some((_, b)) = self.entries.iter().find(|(k, _)| *k == key) {
            return Arc::clone(b);
        }
        let t0 = Instant::now();
        let base = Arc::new(WorldBase::build(&library.polygons(), rules, kind));
        self.build_time += t0.elapsed();
        self.entries.push((key, Arc::clone(&base)));
        base
    }

    /// Drops every entry of library `lib` — its polygon content changed.
    pub(crate) fn invalidate(&mut self, lib: K) {
        self.entries.retain(|((k, _, _), _)| *k != lib);
    }

    /// Total time spent building bases.
    pub(crate) fn build_time(&self) -> Duration {
        self.build_time
    }
}

/// One planned group: write-back metadata. Not scheduled itself — its
/// units are ([`UnitJob`]); its index in the flat group list doubles as
/// the fault plan's `job_index` (same numbering as the previous
/// per-group jobs, so recorded plans stay valid).
struct GroupJob {
    board: usize,
    /// Board-local group index (outcome provenance).
    group: usize,
    target: f64,
    unit_count: usize,
    /// Content-addressed identity of this group (`Some` iff a cache is
    /// attached): what its packets consult before routing.
    key: Option<CacheKey>,
}

/// One scheduled packet: a single unit, snapshotted.
struct UnitJob {
    board: usize,
    /// Index into the flat group-job list.
    gj: usize,
    /// Unit index within its group.
    unit: usize,
    input: UnitInput,
    /// Shared base selected from the `(library, rules)` cache by this
    /// unit's own rules (`None` when sharing is off).
    base: Option<Arc<WorldBase>>,
    /// The obstacle polygons `run_unit_shared` sees: board-local only in
    /// shared mode, `library ++ local` when materialized.
    obstacles: Arc<Vec<Polygon>>,
    /// Global input-order unit index (fault panic-at-unit keys on it,
    /// making injections invariant across scheduling).
    #[cfg_attr(not(feature = "fault"), allow(dead_code))]
    global_unit: u64,
}

/// Why a job (or the run) stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Halt {
    Cancelled,
    Deadline,
}

/// Shared run-control state polled at pop and unit boundaries.
struct RunControl {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    board_budget: Option<Duration>,
    /// Busy nanoseconds charged per board (indexed by submission order).
    board_spent: Vec<AtomicU64>,
}

impl RunControl {
    /// Cancel/deadline check — the pop-boundary predicate.
    fn global_halt(&self) -> Option<Halt> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(Halt::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(Halt::Deadline);
        }
        None
    }

    /// Full check including the board's busy budget — the unit-boundary
    /// predicate.
    fn board_halt(&self, board: usize) -> Option<Halt> {
        self.global_halt().or_else(|| match self.board_budget {
            Some(budget)
                if Duration::from_nanos(self.board_spent[board].load(Ordering::Relaxed))
                    >= budget =>
            {
                Some(Halt::Deadline)
            }
            _ => None,
        })
    }

    fn charge(&self, board: usize, busy: Duration) {
        let nanos = busy.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.board_spent[board].fetch_add(nanos, Ordering::Relaxed);
    }
}

/// What one unit packet resolved to.
enum UnitRes {
    /// The unit's board halted (token, deadline, or busy budget) before
    /// this unit ran.
    Halted(Halt),
    /// The unit completed — routed fresh or replayed from the cache.
    Done { out: UnitOutput, elapsed: Duration },
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Packet bodies run under catch_unwind, so a poisoned accumulator can
    // only mean a panic inside this module's own bookkeeping; recover.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Everything a unit packet needs beyond its own snapshot, shared across
/// the run (packets are `'static`, so this is `Arc`ed rather than
/// borrowed).
struct RunState {
    extend: ExtendConfig,
    control: RunControl,
    cache: Option<Arc<ResultCache>>,
    groups: Vec<GroupJob>,
    /// Per group: fresh-routed unit results accumulating toward an
    /// in-run insert — when every slot fills (no unit was cached, halted,
    /// or panicked), the group inserts. Empty vecs when no cache.
    accum: Vec<Mutex<Vec<Option<CachedUnit>>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    #[cfg(feature = "fault")]
    fault: FaultPlan,
}

impl RunState {
    /// The packet body shared by batch fleets and the warm-up producer:
    /// fault delay on the group's first unit, cache consult, injected
    /// panic, route-with-recording, in-run group insert. `write_back`
    /// distinguishes a real fleet (board halts honored, busy charged)
    /// from a speculative warm-up (no board to halt or charge).
    fn run_unit(&self, job: &UnitJob, write_back: bool) -> UnitRes {
        let t0 = Instant::now();
        #[cfg(feature = "fault")]
        if job.unit == 0 {
            if let Some(delay) = self.fault.delay_jobs.get(&(job.gj as u64)) {
                std::thread::sleep(*delay);
            }
        }
        let gjm = &self.groups[job.gj];
        // Cache consultation first (mirrors the per-group engine): a hit
        // replays the stored bytes — exactly what routing would produce
        // (determinism; module docs of `crate::cache`).
        if let (Some(cache), Some(key)) = (self.cache.as_deref(), gjm.key.as_ref()) {
            if let Some(cached) = cache.lookup(key) {
                if let Some(u) = cached.units().get(job.unit) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return UnitRes::Done {
                        out: u.to_output(),
                        elapsed: t0.elapsed(),
                    };
                }
            }
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        if write_back {
            // Unit boundary: the finer-grained budget check. A fired
            // token or blown budget stops this board's remaining units;
            // other boards are unaffected.
            if let Some(h) = self.control.board_halt(job.board) {
                return UnitRes::Halted(h);
            }
        }
        #[cfg(feature = "fault")]
        if self.fault.panics_unit(job.global_unit) {
            panic!(
                "injected fault: panic at unit {} (board {}, group {}, attempt {})",
                job.global_unit, job.board, gjm.group, self.fault.attempt
            );
        }
        let out = if gjm.key.is_some() {
            let mut touches = CellTouches::new();
            let out = run_unit_shared_recorded(
                &job.input,
                &job.obstacles,
                job.base.as_ref(),
                &self.extend,
                &mut touches,
            );
            // In-run group insert: only a group whose *every* unit routed
            // fresh inserts (a panicking or halted unit never fills its
            // slot — no poisoned entries, structurally; a mixed group's
            // cached units mean the entry already exists).
            if let (Some(cache), Some(key)) = (self.cache.as_deref(), gjm.key) {
                let full = {
                    let mut acc = lock(&self.accum[job.gj]);
                    acc[job.unit] = Some(CachedUnit::new(&out, touches));
                    if acc.iter().all(Option::is_some) {
                        Some(acc.iter_mut().flat_map(Option::take).collect::<Vec<_>>())
                    } else {
                        None
                    }
                };
                if let Some(units) = full {
                    cache.insert(key, CachedGroup::new(units));
                }
            }
            out
        } else {
            run_unit_shared(&job.input, &job.obstacles, job.base.as_ref(), &self.extend)
        };
        if write_back {
            self.control.charge(job.board, out.busy());
        }
        UnitRes::Done {
            out,
            elapsed: t0.elapsed(),
        }
    }
}

/// Routes every group of every valid board of `set`, in place.
///
/// Every board comes back with a [`BoardOutcome`]; routed boards' results
/// (trace geometry, group reports) are bit-identical to routing each
/// board's materialized twin through `match_all_groups` sequentially, for
/// every worker count and both `share_library` states (see the
/// [module docs](self) for the argument; property-tested in
/// `tests/determinism.rs` and, under faults, `tests/chaos.rs`).
pub fn route_fleet(set: &mut BoardSet, config: &FleetConfig) -> FleetReport {
    let started = Instant::now();
    let n_boards = set.boards.len();
    let workers = config
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);

    // ---- Distinct libraries (by Arc identity). --------------------------
    type LibKey = *const meander_layout::ObstacleLibrary;
    let mut distinct: Vec<(LibKey, usize)> = Vec::new(); // (library, first board)
    for (b, lb) in set.boards.iter().enumerate() {
        let key = Arc::as_ptr(lb.library());
        if !distinct.iter().any(|(k, _)| *k == key) {
            distinct.push((key, b));
        }
    }
    let libraries = distinct.len();
    let library_polygons: usize = distinct
        .iter()
        .map(|&(_, b)| set.boards[b].library().len())
        .sum();

    // ---- Validation gate: reject malformed input before it is planned. --
    // Each distinct library is scanned once (boards sharing it inherit
    // the verdict); each board is scanned once. Rejected boards are never
    // planned, never donate rules to a shared base, and keep their input
    // geometry byte for byte.
    let mut rejected: Vec<Option<ValidationError>> = vec![None; n_boards];
    let mut validation_wall = Duration::ZERO;
    if config.validate {
        let t0 = Instant::now();
        let lib_verdicts: Vec<(LibKey, Option<ValidationError>)> = distinct
            .iter()
            .map(|&(key, b)| (key, validate_library(set.boards[b].library()).err()))
            .collect();
        for (b, lb) in set.boards.iter().enumerate() {
            let key = Arc::as_ptr(lb.library());
            let lib_err = lib_verdicts
                .iter()
                .find(|(k, _)| *k == key)
                .and_then(|(_, e)| e.clone());
            rejected[b] = lib_err.or_else(|| validate_board(lb.board()).err());
        }
        #[cfg(feature = "fault")]
        for &b in &config.fault.trip_boards {
            if b < n_boards && rejected[b].is_none() {
                rejected[b] = Some(ValidationError::Injected {
                    reason: format!("fault plan tripped validation of board {b}"),
                });
            }
        }
        validation_wall = t0.elapsed();
    }

    // ---- Shared worlds: one WorldBase per (library, rules lattice). -----
    // The cache keys on the floats `WorldBase::compatible` checks — the
    // obstacle inflation and lattice cell each trace's rules derive — so a
    // mixed-rules fleet (or a fleet that just took a `SetRules` edit)
    // still shares: every rule set present on a valid board gets exactly
    // one base per library, and each unit below selects the base its own
    // rules are compatible with. Before this keying, off-rules units fell
    // back to unamortized materialization (ROADMAP scenario item (a)).
    let mut bases: BaseCache<LibKey> = BaseCache::new();
    if config.share_library {
        for (b, lb) in set.boards.iter().enumerate() {
            if rejected[b].is_some() {
                continue;
            }
            let key = Arc::as_ptr(lb.library());
            for (_, t) in lb.board().traces() {
                bases.get_or_build(key, t.rules(), lb.library(), config.extend.index);
            }
        }
    }
    let base_build = bases.build_time();

    // ---- Content identities, only when a cache is attached. -------------
    // One Merkle root per distinct library, one local digest per valid
    // board; with duplicates in the set the digests coincide and their
    // jobs share cache entries. The hashes cost one pass over the
    // geometry; an uncached fleet skips them entirely.
    let lib_roots: Vec<(LibKey, u64)> = if config.cache.is_some() {
        distinct
            .iter()
            .map(|&(key, b)| (key, library_root(set.boards[b].library())))
            .collect()
    } else {
        Vec::new()
    };
    let board_hash: Vec<u64> = if config.cache.is_some() {
        set.boards
            .iter()
            .enumerate()
            .map(|(b, lb)| {
                if rejected[b].is_some() {
                    0
                } else {
                    hash_board_local(lb.board())
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    // ---- Flatten boards × groups × units into packets (snapshot
    // everything). Groups survive as write-back metadata.
    let mut group_jobs: Vec<GroupJob> = Vec::new();
    let mut unit_jobs: Vec<UnitJob> = Vec::new();
    let mut units_total = 0usize;
    let mut groups_per_board: Vec<usize> = Vec::with_capacity(n_boards);
    for (b, lb) in set.boards.iter().enumerate() {
        if rejected[b].is_some() {
            groups_per_board.push(0);
            continue;
        }
        let obstacles: Arc<Vec<Polygon>> = if config.share_library {
            Arc::new(gather_obstacles(lb.board()))
        } else {
            let mut all = lb.library().polygons();
            all.extend(gather_obstacles(lb.board()));
            Arc::new(all)
        };
        let lib_key = Arc::as_ptr(lb.library());
        let (targets, flat) = plan_unit_packets(lb.board());
        groups_per_board.push(targets.len());
        let mut by_group: Vec<Vec<PlannedUnit>> = (0..targets.len()).map(|_| Vec::new()).collect();
        for p in flat {
            by_group[p.group].push(p);
        }
        for (group, (units, &target)) in by_group.into_iter().zip(&targets).enumerate() {
            let key = config.cache.is_some().then(|| {
                let inputs: Vec<UnitInput> = units.iter().map(|p| p.input.clone()).collect();
                CacheKey {
                    library_root: lib_roots
                        .iter()
                        .find(|(k, _)| *k == lib_key)
                        .map(|(_, r)| *r)
                        .unwrap_or(0),
                    rules_hash: cache::rules_key(&inputs, &config.extend),
                    board_local_hash: board_hash[b],
                    group_hash: cache::group_key(&lb.board().groups()[group], group, target),
                }
            });
            let gj = group_jobs.len();
            group_jobs.push(GroupJob {
                board: b,
                group,
                target,
                unit_count: units.len(),
                key,
            });
            for p in units {
                // Per-unit base selection: the cache covers every rule
                // set a valid board's traces carry, so in shared mode the
                // lookup always hits (pairs route their merged median
                // under *virtualized* rules and fall back to
                // materialization inside the engine — same as before,
                // bit-identical).
                let base = if config.share_library {
                    let base = bases.lookup(lib_key, p.input.rules());
                    debug_assert!(base.is_some(), "base cache covers all valid rules");
                    base
                } else {
                    None
                };
                unit_jobs.push(UnitJob {
                    board: b,
                    gj,
                    unit: p.unit,
                    input: p.input,
                    base,
                    obstacles: Arc::clone(&obstacles),
                    global_unit: units_total as u64,
                });
                units_total += 1;
            }
        }
    }
    let n_jobs = group_jobs.len();

    // ---- Zero-unit groups: no packets to schedule; mirror the previous
    // per-group engine's cache flow on the calling thread.
    let mut planning_hits = 0u64;
    let mut planning_misses = 0u64;
    if let Some(cache) = config.cache.as_deref() {
        for gj in &group_jobs {
            if gj.unit_count > 0 {
                continue;
            }
            let Some(key) = gj.key else { continue };
            if cache.lookup(&key).is_some() {
                planning_hits += 1;
            } else {
                planning_misses += 1;
                cache.insert(key, CachedGroup::new(Vec::new()));
            }
        }
    }

    // ---- Route as Batch packets on the bucketed scheduler. --------------
    let state = Arc::new(RunState {
        extend: config.extend.clone(),
        control: RunControl {
            cancel: config.cancel.clone(),
            deadline: config.deadline.map(|d| started + d),
            board_budget: config.board_budget,
            board_spent: (0..n_boards).map(|_| AtomicU64::new(0)).collect(),
        },
        cache: config.cache.clone(),
        accum: group_jobs
            .iter()
            .map(|gj| {
                Mutex::new(if gj.key.is_some() {
                    vec![None; gj.unit_count]
                } else {
                    Vec::new()
                })
            })
            .collect(),
        groups: group_jobs,
        cache_hits: AtomicU64::new(planning_hits),
        cache_misses: AtomicU64::new(planning_misses),
        #[cfg(feature = "fault")]
        fault: config.fault.clone(),
    });
    let unit_jobs = Arc::new(unit_jobs);
    let stop: Arc<dyn Fn() -> bool + Send + Sync> = {
        let s = Arc::clone(&state);
        Arc::new(move || s.control.global_halt().is_some())
    };
    let body = {
        let s = Arc::clone(&state);
        Arc::new(move |job: &UnitJob| s.run_unit(job, true))
    };
    let t0 = Instant::now();
    let (statuses, scheduler, sched_delta) = run_packets(
        config.sched.as_ref(),
        Tier::Batch,
        workers,
        Arc::clone(&unit_jobs),
        Some(stop),
        body,
    );
    let route_wall = t0.elapsed();

    // ---- Resolve per-board outcomes (Panicked > Halted > Routed). -------
    // A skipped packet was never claimed: whether that's "cancelled" or
    // "deadline" is a property of the run, read off the token.
    let skip_halt = if state
        .control
        .cancel
        .as_ref()
        .is_some_and(CancelToken::is_cancelled)
    {
        Halt::Cancelled
    } else {
        Halt::Deadline
    };
    let mut panic_of: Vec<Option<JobError>> = vec![None; n_boards];
    let mut halt_of: Vec<Option<Halt>> = vec![None; n_boards];
    let mut units_run = 0usize;
    let mut latency = LatencyHistogram::default();
    for (job, status) in unit_jobs.iter().zip(&statuses) {
        match status {
            JobStatus::Done(UnitRes::Done { elapsed, .. }) => {
                units_run += 1;
                latency.record(*elapsed);
            }
            JobStatus::Done(UnitRes::Halted(h)) => {
                halt_of[job.board].get_or_insert(*h);
            }
            JobStatus::Panicked(p) => {
                panic_of[job.board].get_or_insert(JobError::Panicked {
                    group: state.groups[job.gj].group,
                    unit: Some(job.unit as u64),
                    message: p.message(),
                });
            }
            JobStatus::Skipped => {
                halt_of[job.board].get_or_insert(skip_halt);
            }
        }
    }
    let outcomes: Vec<BoardOutcome> = (0..n_boards)
        .map(|b| {
            if let Some(err) = rejected[b].clone() {
                BoardOutcome::Rejected(err)
            } else if let Some(err) = panic_of[b].take() {
                BoardOutcome::Failed(err)
            } else if let Some(h) = halt_of[b] {
                match h {
                    Halt::Cancelled => BoardOutcome::Cancelled,
                    Halt::Deadline => BoardOutcome::DeadlineExceeded,
                }
            } else {
                BoardOutcome::Routed
            }
        })
        .collect();

    // ---- Atomic write-back: only fully-routed boards, in (board, group,
    // unit) order. A board that lost any packet keeps its input geometry.
    // Packets reassemble into their group's output vector first (the flat
    // list is (board, group, unit)-ordered, so pushes arrive in unit
    // order).
    let mut group_outputs: Vec<Vec<UnitOutput>> = state
        .groups
        .iter()
        .map(|gj| Vec::with_capacity(gj.unit_count))
        .collect();
    for (job, status) in unit_jobs.iter().zip(statuses) {
        if !outcomes[job.board].is_routed() {
            continue;
        }
        let JobStatus::Done(UnitRes::Done { out, .. }) = status else {
            unreachable!("a routed board has only completed packets");
        };
        group_outputs[job.gj].push(out);
    }
    let mut reports: Vec<Vec<GroupReport>> = groups_per_board
        .iter()
        .map(|&g| Vec::with_capacity(g))
        .collect();
    for (gj, outputs) in state.groups.iter().zip(group_outputs) {
        if !outcomes[gj.board].is_routed() {
            continue;
        }
        let board = set.boards[gj.board].board_mut();
        let (traces, busy) = apply_outputs(board, outputs);
        reports[gj.board].push(GroupReport {
            target: gj.target,
            traces,
            runtime: busy,
        });
    }

    let board_busy: Vec<Duration> = state
        .control
        .board_spent
        .iter()
        .map(|a| Duration::from_nanos(a.load(Ordering::Relaxed)))
        .collect();
    let count = |pred: fn(&BoardOutcome) -> bool| outcomes.iter().filter(|o| pred(o)).count();
    FleetReport {
        reports,
        stats: FleetStats {
            boards: n_boards,
            jobs: n_jobs,
            units: units_total,
            units_run,
            libraries,
            library_polygons,
            routed: count(BoardOutcome::is_routed),
            rejected: count(|o| matches!(o, BoardOutcome::Rejected(_))),
            failed: count(|o| matches!(o, BoardOutcome::Failed(_))),
            cancelled: count(|o| matches!(o, BoardOutcome::Cancelled)),
            deadline_exceeded: count(|o| matches!(o, BoardOutcome::DeadlineExceeded)),
            degraded: 0,
            shed: 0,
            retries: 0,
            units_dirty: 0,
            units_skipped: 0,
            cells_dirty: 0,
            cache_hits: state.cache_hits.load(Ordering::Relaxed),
            cache_misses: state.cache_misses.load(Ordering::Relaxed),
            boards_replanned: 0,
            board_busy,
            validation_wall,
            base_build,
            route_wall,
            latency,
            scheduler,
            sched: sched_delta,
        },
        outcomes,
    }
}

/// What a speculative warm-up pass did.
#[derive(Debug, Clone, Default)]
pub struct WarmupReport {
    /// Boards scanned (invalid ones are skipped, not warmed).
    pub boards: usize,
    /// Boards that failed validation and were skipped.
    pub invalid: usize,
    /// Groups planned across the valid boards (duplicates included).
    pub groups: usize,
    /// Distinct cache keys among them — the predicted-dup structure
    /// ([`meander_layout::hash`] digests): a dup-heavy fleet collapses to
    /// few distinct keys, and warming one representative serves them all.
    pub distinct: usize,
    /// Distinct keys that already had entries (nothing to do).
    pub already_cached: usize,
    /// Groups this pass routed and inserted.
    pub warmed: usize,
    /// Groups that lost at least one unit to a panic — never inserted,
    /// never poisoning the cache.
    pub failed: usize,
    /// Groups whose packets were skipped by cancellation or the deadline.
    pub skipped: usize,
    /// Wall clock of the pass.
    pub elapsed: Duration,
    /// Worker-level counters of the pass.
    pub scheduler: StealCounters,
    /// Bucket counters over the pass's window (its packets run at
    /// [`Tier::Speculative`]).
    pub sched: SchedCounters,
}

/// Pre-populates `cache` with the entries a fleet like `set` would need —
/// on the [`Tier::Speculative`] bucket, so a shared
/// [`FleetConfig::sched`] only spends cycles no interactive or batch
/// work wants.
///
/// The producer enumerates the fleet's **predicted-dup structure**: every
/// group's exact [`CacheKey`] (library Merkle root + board digest + group
/// digest — [`meander_layout::hash`]), deduplicated, minus keys already
/// cached. One representative group per distinct missing key routes with
/// touch recording and installs through [`ResultCache::insert`] — the
/// same exact keys and insert-if-absent path the engine uses, so
/// correctness is inherited: a warmed entry is bit-identical to what the
/// fleet would have routed and inserted itself. Boards are **not**
/// written back; the set is untouched.
///
/// A panicking packet (chaos-injected or real) resolves its group as
/// [`WarmupReport::failed`] — an incomplete group never fills its insert
/// accumulator, so a crash cannot poison the cache. Fault injection keys
/// on the warm-up's *own* input-order unit/group indices.
pub fn warm_fleet_cache(
    set: &BoardSet,
    config: &FleetConfig,
    cache: &Arc<ResultCache>,
) -> WarmupReport {
    let started = Instant::now();
    let n_boards = set.boards.len();
    let workers = config
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);

    type LibKey = *const meander_layout::ObstacleLibrary;
    let mut distinct_libs: Vec<(LibKey, usize)> = Vec::new();
    for (b, lb) in set.boards.iter().enumerate() {
        let key = Arc::as_ptr(lb.library());
        if !distinct_libs.iter().any(|(k, _)| *k == key) {
            distinct_libs.push((key, b));
        }
    }
    let mut invalid = vec![false; n_boards];
    if config.validate {
        let lib_verdicts: Vec<(LibKey, bool)> = distinct_libs
            .iter()
            .map(|&(key, b)| (key, validate_library(set.boards[b].library()).is_err()))
            .collect();
        for (b, lb) in set.boards.iter().enumerate() {
            let key = Arc::as_ptr(lb.library());
            invalid[b] = lib_verdicts
                .iter()
                .find(|(k, _)| *k == key)
                .is_some_and(|(_, bad)| *bad)
                || validate_board(lb.board()).is_err();
        }
    }
    let lib_roots: Vec<(LibKey, u64)> = distinct_libs
        .iter()
        .map(|&(key, b)| (key, library_root(set.boards[b].library())))
        .collect();

    // ---- Enumerate distinct missing keys; plan one representative each.
    let mut bases: BaseCache<LibKey> = BaseCache::new();
    let mut seen: std::collections::HashSet<CacheKey> = std::collections::HashSet::new();
    let mut group_jobs: Vec<GroupJob> = Vec::new();
    let mut unit_jobs: Vec<UnitJob> = Vec::new();
    let mut groups = 0usize;
    let mut already_cached = 0usize;
    let mut warmed_empty = 0usize;
    for (b, lb) in set.boards.iter().enumerate() {
        if invalid[b] {
            continue;
        }
        let lib_key = Arc::as_ptr(lb.library());
        let library_root = lib_roots
            .iter()
            .find(|(k, _)| *k == lib_key)
            .map(|(_, r)| *r)
            .unwrap_or(0);
        let board_local_hash = hash_board_local(lb.board());
        let obstacles: Arc<Vec<Polygon>> = if config.share_library {
            Arc::new(gather_obstacles(lb.board()))
        } else {
            let mut all = lb.library().polygons();
            all.extend(gather_obstacles(lb.board()));
            Arc::new(all)
        };
        let (targets, flat) = plan_unit_packets(lb.board());
        groups += targets.len();
        let mut by_group: Vec<Vec<PlannedUnit>> = (0..targets.len()).map(|_| Vec::new()).collect();
        for p in flat {
            by_group[p.group].push(p);
        }
        for (group, (units, &target)) in by_group.into_iter().zip(&targets).enumerate() {
            let inputs: Vec<UnitInput> = units.iter().map(|p| p.input.clone()).collect();
            let key = CacheKey {
                library_root,
                rules_hash: cache::rules_key(&inputs, &config.extend),
                board_local_hash,
                group_hash: cache::group_key(&lb.board().groups()[group], group, target),
            };
            if !seen.insert(key) {
                continue; // a twin's representative already queued
            }
            if cache.contains(&key) {
                already_cached += 1;
                continue;
            }
            if units.is_empty() {
                if cache.insert(key, CachedGroup::new(Vec::new())) {
                    warmed_empty += 1;
                }
                continue;
            }
            if config.share_library {
                for u in &inputs {
                    bases.get_or_build(lib_key, u.rules(), lb.library(), config.extend.index);
                }
            }
            let gj = group_jobs.len();
            group_jobs.push(GroupJob {
                board: b,
                group,
                target,
                unit_count: units.len(),
                key: Some(key),
            });
            for p in units {
                let base = if config.share_library {
                    bases.lookup(lib_key, p.input.rules())
                } else {
                    None
                };
                unit_jobs.push(UnitJob {
                    board: b,
                    gj,
                    unit: p.unit,
                    input: p.input,
                    base,
                    obstacles: Arc::clone(&obstacles),
                    global_unit: unit_jobs.len() as u64,
                });
            }
        }
    }

    // ---- Route representatives as Speculative packets. ------------------
    let state = Arc::new(RunState {
        extend: config.extend.clone(),
        control: RunControl {
            cancel: config.cancel.clone(),
            deadline: config.deadline.map(|d| started + d),
            board_budget: None,
            board_spent: Vec::new(),
        },
        cache: Some(Arc::clone(cache)),
        accum: group_jobs
            .iter()
            .map(|gj| Mutex::new(vec![None; gj.unit_count]))
            .collect(),
        groups: group_jobs,
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        #[cfg(feature = "fault")]
        fault: config.fault.clone(),
    });
    let unit_jobs = Arc::new(unit_jobs);
    let stop: Arc<dyn Fn() -> bool + Send + Sync> = {
        let s = Arc::clone(&state);
        Arc::new(move || s.control.global_halt().is_some())
    };
    let body = {
        let s = Arc::clone(&state);
        Arc::new(move |job: &UnitJob| s.run_unit(job, false))
    };
    let (statuses, scheduler, sched_delta) = run_packets(
        config.sched.as_ref(),
        Tier::Speculative,
        workers,
        Arc::clone(&unit_jobs),
        Some(stop),
        body,
    );

    // ---- Resolve per-group fates from the packet statuses. --------------
    let n_groups = state.groups.len();
    let mut group_panicked = vec![false; n_groups];
    let mut group_skipped = vec![false; n_groups];
    for (job, status) in unit_jobs.iter().zip(&statuses) {
        match status {
            JobStatus::Done(_) => {}
            JobStatus::Panicked(_) => group_panicked[job.gj] = true,
            JobStatus::Skipped => group_skipped[job.gj] = true,
        }
    }
    let failed = group_panicked.iter().filter(|&&p| p).count();
    let skipped = group_skipped
        .iter()
        .zip(&group_panicked)
        .filter(|(&s, &p)| s && !p)
        .count();
    let warmed = warmed_empty + (n_groups - failed - skipped);

    WarmupReport {
        boards: n_boards,
        invalid: invalid.iter().filter(|&&i| i).count(),
        groups,
        distinct: seen.len(),
        already_cached,
        warmed,
        failed,
        skipped,
        elapsed: started.elapsed(),
        scheduler,
        sched: sched_delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_core::match_all_groups;
    use meander_geom::Point;
    use meander_layout::gen::fleet_boards_small;

    fn serial_extend() -> ExtendConfig {
        ExtendConfig {
            parallel: false,
            ..Default::default()
        }
    }

    /// Fleet results must match per-board sequential `match_all_groups`
    /// exactly — geometry bits included — in both sharing modes.
    #[test]
    fn fleet_matches_sequential_bitwise() {
        for share in [true, false] {
            let fleet = fleet_boards_small(5, 21, 42);
            let mut set = BoardSet::new(fleet.boards.clone());
            let report = route_fleet(
                &mut set,
                &FleetConfig {
                    extend: serial_extend(),
                    workers: Some(3),
                    share_library: share,
                    ..Default::default()
                },
            );
            assert_eq!(report.stats.boards, 5);
            assert!(report.all_routed(), "{:?}", report.outcomes);
            assert_eq!(report.stats.routed, 5);
            assert_eq!(report.stats.units_run, report.stats.units);
            assert_eq!(report.stats.latency.count as usize, report.stats.units_run);
            assert_eq!(
                report.stats.scheduler.total_executed() as usize,
                report.stats.units
            );
            assert_eq!(
                report.stats.sched.packets[Tier::Batch.index()] as usize,
                report.stats.units
            );
            assert_eq!(report.stats.sched.packets[Tier::Interactive.index()], 0);

            for (b, lb) in fleet.boards.iter().enumerate() {
                let mut reference = lb.to_board();
                let want = match_all_groups(&mut reference, &serial_extend());
                let got = &report.reports[b];
                assert_eq!(want.len(), got.len(), "share={share} board {b}");
                for (w, g) in want.iter().zip(got.iter()) {
                    assert_eq!(w.target.to_bits(), g.target.to_bits());
                    assert_eq!(w.traces.len(), g.traces.len());
                    for (x, y) in w.traces.iter().zip(&g.traces) {
                        assert_eq!(x.id, y.id);
                        assert_eq!(x.patterns, y.patterns);
                        assert_eq!(x.achieved.to_bits(), y.achieved.to_bits());
                        assert_eq!(x.initial.to_bits(), y.initial.to_bits());
                        assert_eq!(x.via_msdtw, y.via_msdtw);
                    }
                }
                // Geometry: the fleet board's local part must now hold the
                // exact routed centerlines of the reference.
                for (id, t) in reference.traces() {
                    let routed = set.boards()[b].board().trace(id).unwrap();
                    assert_eq!(
                        t.centerline(),
                        routed.centerline(),
                        "share={share} board {b} trace {id:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_mode_builds_one_base() {
        let fleet = fleet_boards_small(4, 9, 13);
        let mut set = BoardSet::new(fleet.boards);
        let report = route_fleet(&mut set, &FleetConfig::default());
        assert_eq!(report.stats.libraries, 1);
        assert!(report.stats.library_polygons > 0);
        assert!(report.stats.base_build > Duration::ZERO);
        assert!(report.stats.validation_wall > Duration::ZERO);
        assert_eq!(report.reports.len(), 4);
        // Unshared mode reports the library but builds no base.
        let fleet = fleet_boards_small(4, 9, 13);
        let mut set = BoardSet::new(fleet.boards);
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                share_library: false,
                ..Default::default()
            },
        );
        assert_eq!(report.stats.libraries, 1);
        assert_eq!(report.stats.base_build, Duration::ZERO);
    }

    #[test]
    fn empty_fleet() {
        let mut set = BoardSet::new(vec![]);
        let report = route_fleet(&mut set, &FleetConfig::default());
        assert_eq!(report.stats.boards, 0);
        assert_eq!(report.stats.jobs, 0);
        assert!(report.reports.is_empty());
        assert!(report.outcomes.is_empty());
    }

    /// A malformed board is rejected with provenance; its neighbours
    /// route bit-identically to a fleet that never contained it.
    #[test]
    fn invalid_board_is_rejected_not_routed() {
        let fleet = fleet_boards_small(3, 21, 42);
        let mut boards = fleet.boards.clone();
        // Poison board 1: NaN coordinate on its first trace.
        {
            let board = boards[1].board_mut();
            let id = board.traces().next().map(|(id, _)| id).unwrap();
            let trace = board.trace_mut(id).unwrap();
            let mut pts = trace.centerline().points().to_vec();
            pts[0] = Point::new(f64::NAN, pts[0].y);
            trace.set_centerline(meander_geom::Polyline::new(pts));
        }
        let poisoned_snapshot = boards[1].board().clone();
        let mut set = BoardSet::new(boards);
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: serial_extend(),
                workers: Some(2),
                ..Default::default()
            },
        );
        assert!(matches!(
            report.outcomes[1],
            BoardOutcome::Rejected(ValidationError::NonFiniteCoordinate { .. })
        ));
        assert!(report.outcomes[0].is_routed());
        assert!(report.outcomes[2].is_routed());
        assert_eq!(report.stats.rejected, 1);
        assert_eq!(report.stats.routed, 2);
        assert!(report.reports[1].is_empty());
        // The rejected board's geometry is untouched.
        for (id, t) in poisoned_snapshot.traces() {
            let now = set.boards()[1].board().trace(id).unwrap();
            assert_eq!(
                t.centerline().points().len(),
                now.centerline().points().len()
            );
        }
        // The healthy boards match their sequential references exactly.
        for b in [0usize, 2] {
            let mut reference = fleet.boards[b].to_board();
            let _ = match_all_groups(&mut reference, &serial_extend());
            for (id, t) in reference.traces() {
                assert_eq!(
                    t.centerline(),
                    set.boards()[b].board().trace(id).unwrap().centerline(),
                    "board {b} trace {id:?}"
                );
            }
        }
    }

    /// A pre-fired token cancels every board before any routing happens.
    #[test]
    fn pre_cancelled_fleet_routes_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let fleet = fleet_boards_small(3, 7, 11);
        let mut set = BoardSet::new(fleet.boards);
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: serial_extend(),
                workers: Some(2),
                cancel: Some(token),
                ..Default::default()
            },
        );
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, BoardOutcome::Cancelled)));
        assert_eq!(report.stats.cancelled, 3);
        assert_eq!(report.stats.units_run, 0);
    }

    /// A zero deadline expires every board; a generous one routes all.
    #[test]
    fn deadlines_bound_the_run() {
        let fleet = fleet_boards_small(3, 7, 11);
        let mut set = BoardSet::new(fleet.boards.clone());
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: serial_extend(),
                workers: Some(2),
                deadline: Some(Duration::ZERO),
                ..Default::default()
            },
        );
        assert!(report
            .outcomes
            .iter()
            .all(|o| matches!(o, BoardOutcome::DeadlineExceeded)));
        assert_eq!(report.stats.deadline_exceeded, 3);

        let mut set = BoardSet::new(fleet.boards);
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                extend: serial_extend(),
                workers: Some(2),
                deadline: Some(Duration::from_secs(600)),
                ..Default::default()
            },
        );
        assert!(report.all_routed(), "{:?}", report.outcomes);
    }
}
