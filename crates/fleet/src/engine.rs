//! The batch engine: flatten a [`BoardSet`] into `(board, group)` jobs,
//! route them on the work-stealing pool, write back in order.
//!
//! ## Job model
//!
//! The unit of scheduling is one **group of one board** — coarse enough
//! that a job amortizes its board's snapshot, fine enough that a 16-board
//! fleet keeps a worker pool busy even when board sizes are skewed (the
//! steal-half deques absorb the skew). Inside a job, the group's units
//! (traces / differential pairs) run serially through the same
//! [`meander_core::run_unit_shared`] the single-board driver uses.
//!
//! ## Library sharing
//!
//! Boards reference an immutable [`meander_layout::ObstacleLibrary`]. With
//! [`FleetConfig::share_library`] the engine builds one
//! [`WorldBase`] per distinct library — the library's polygons inflated
//! and edge-indexed **once** — and every trace of every board overlays its
//! per-trace remainder on it, instead of re-indexing the library's
//! geometry per trace. With it off, each board materializes `library ++
//! local` obstacles and routes exactly like a standalone board (the
//! baseline the bench compares against).
//!
//! ## Determinism
//!
//! Fleet output is **bit-identical** to routing each board's materialized
//! twin ([`meander_layout::LibraryBoard::to_board`]) through
//! [`meander_core::match_all_groups`] sequentially:
//!
//! * jobs snapshot their inputs up front and are pure functions of them
//!   (no job reads another's write-back — sound under the model invariant
//!   that a trace belongs to at most one group);
//! * the scheduler only moves *where* a job runs; results land in
//!   input-order slots and write back in `(board, group, unit)` order;
//! * the shared-library world answers every spatial query identically to
//!   the monolithic per-trace index (`meander_index::OverlayIndex`'s
//!   union-equals-monolithic contract), so the routed floats themselves
//!   are the same stream.
//!
//! Wall-clock fields ([`GroupReport::runtime`], [`FleetStats`] timings)
//! are measurements, not outputs — they are excluded from the identity.

use crate::steal::{steal_map, StealCounters};
use meander_core::{
    apply_outputs, gather_obstacles, plan_board_units, run_unit_shared, ExtendConfig, GroupReport,
    UnitInput, UnitOutput, WorldBase,
};
use meander_geom::Polygon;
use meander_layout::LibraryBoard;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A fleet of boards, each referencing a shared obstacle library.
///
/// Boards may reference *different* libraries (the engine builds one
/// shared world per distinct library); the common case is one library
/// across the whole set.
#[derive(Debug, Clone, Default)]
pub struct BoardSet {
    boards: Vec<LibraryBoard>,
}

impl BoardSet {
    /// Wraps a fleet of library-referencing boards.
    pub fn new(boards: Vec<LibraryBoard>) -> Self {
        BoardSet { boards }
    }

    /// The boards.
    #[inline]
    pub fn boards(&self) -> &[LibraryBoard] {
        &self.boards
    }

    /// Mutable board access (the engine writes results back here).
    #[inline]
    pub fn boards_mut(&mut self) -> &mut [LibraryBoard] {
        &mut self.boards
    }

    /// Number of boards.
    #[inline]
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// `true` when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }
}

/// Tunables of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-unit engine configuration (index kind, batch kernels, DP
    /// profile, …). The fleet scheduler replaces the driver-level fan-out,
    /// so [`ExtendConfig::parallel`] only gates the intra-pop side-context
    /// worker pair here.
    pub extend: ExtendConfig,
    /// Worker count; `None` uses the host's available parallelism.
    pub workers: Option<usize>,
    /// Build each distinct obstacle library's world once and overlay it
    /// per trace (`true`, the point of the fleet), or materialize
    /// `library ++ local` per board and index per trace like standalone
    /// boards (`false` — the amortization-off baseline). Output is
    /// bit-identical either way.
    pub share_library: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            extend: ExtendConfig::default(),
            workers: None,
            share_library: true,
        }
    }
}

/// Scheduler and sharing observability for one fleet run.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Boards routed.
    pub boards: usize,
    /// `(board, group)` jobs scheduled.
    pub jobs: usize,
    /// Matching units (traces / pairs) across all jobs.
    pub units: usize,
    /// Distinct obstacle libraries encountered.
    pub libraries: usize,
    /// Total polygons across those libraries.
    pub library_polygons: usize,
    /// Time spent building the shared [`WorldBase`]s (zero when
    /// `share_library` is off) — the cost that is paid once instead of
    /// per trace.
    pub base_build: Duration,
    /// Wall clock of the scheduled phase (planning + routing + write-back
    /// excluded: this is the pool's span).
    pub route_wall: Duration,
    /// Scheduler counters (workers, steals, per-worker busy).
    pub scheduler: StealCounters,
}

/// One fleet run's results: per-board group reports (board order, group
/// order — exactly what per-board [`meander_core::match_all_groups`]
/// returns) plus the run's stats.
#[derive(Debug)]
pub struct FleetReport {
    /// `reports[b]` are board `b`'s group reports.
    pub reports: Vec<Vec<GroupReport>>,
    /// Scheduler / sharing observability.
    pub stats: FleetStats,
}

/// One scheduled job: a group of a board, snapshotted.
struct Job {
    board: usize,
    target: f64,
    units: Vec<UnitInput>,
    /// The obstacle polygons `run_unit_shared` sees: board-local only in
    /// shared mode, `library ++ local` when materialized.
    obstacles: Arc<Vec<Polygon>>,
    base: Option<Arc<WorldBase>>,
}

struct JobOutput {
    outputs: Vec<UnitOutput>,
}

/// Routes every group of every board of `set`, in place.
///
/// Results (trace geometry, group reports) are bit-identical to routing
/// each board's materialized twin through `match_all_groups` sequentially,
/// for every worker count and both `share_library` states (see the
/// [module docs](self) for the argument; property-tested in
/// `tests/determinism.rs`).
pub fn route_fleet(set: &mut BoardSet, config: &FleetConfig) -> FleetReport {
    let n_boards = set.boards.len();
    let workers = config
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1);

    // ---- Shared worlds: one WorldBase per distinct library. -------------
    // One dedup pass finds the distinct libraries (by Arc identity); both
    // sharing modes report the same `libraries`/`library_polygons` stats
    // from it. In shared mode, each distinct library with at least one
    // routed trace gets a prebuilt base — rules come from the first trace
    // of the first board using it; units whose rules derive different
    // inflation/lattice floats fall back to materialization inside the
    // engine (bit-identical, just unamortized), so a mixed-rules fleet is
    // correct — merely slower.
    type LibKey = *const meander_layout::ObstacleLibrary;
    let mut distinct: Vec<(LibKey, usize)> = Vec::new(); // (library, first board)
    for (b, lb) in set.boards.iter().enumerate() {
        let key = Arc::as_ptr(lb.library());
        if !distinct.iter().any(|(k, _)| *k == key) {
            distinct.push((key, b));
        }
    }
    let libraries = distinct.len();
    let library_polygons: usize = distinct
        .iter()
        .map(|&(_, b)| set.boards[b].library().len())
        .sum();
    let mut bases: Vec<(LibKey, Arc<WorldBase>)> = Vec::new();
    let mut base_build = Duration::ZERO;
    if config.share_library {
        for &(key, first_board) in &distinct {
            let lb = &set.boards[first_board];
            let Some((_, first_trace)) = lb.board().traces().next() else {
                continue; // no trace anywhere on the first board: no rules to derive
            };
            let rules = *first_trace.rules();
            let t0 = Instant::now();
            let base = WorldBase::build(&lb.library().polygons(), &rules, config.extend.index);
            base_build += t0.elapsed();
            bases.push((key, Arc::new(base)));
        }
    }

    // ---- Flatten boards × groups into jobs (snapshot everything). -------
    let mut jobs: Vec<Job> = Vec::new();
    let mut units_total = 0usize;
    let mut groups_per_board: Vec<usize> = Vec::with_capacity(n_boards);
    for (b, lb) in set.boards.iter().enumerate() {
        let obstacles: Arc<Vec<Polygon>> = if config.share_library {
            Arc::new(gather_obstacles(lb.board()))
        } else {
            let mut all = lb.library().polygons();
            all.extend(gather_obstacles(lb.board()));
            Arc::new(all)
        };
        let base = if config.share_library {
            let key = Arc::as_ptr(lb.library());
            bases
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, b)| Arc::clone(b))
        } else {
            None
        };
        let planned = plan_board_units(lb.board());
        groups_per_board.push(planned.len());
        for (target, units) in planned {
            units_total += units.len();
            jobs.push(Job {
                board: b,
                target,
                units,
                obstacles: Arc::clone(&obstacles),
                base: base.clone(),
            });
        }
    }
    let n_jobs = jobs.len();

    // ---- Route on the work-stealing pool. -------------------------------
    let extend = &config.extend;
    let t0 = Instant::now();
    let (outputs, scheduler) = steal_map(&jobs, workers, |job: &Job| JobOutput {
        outputs: job
            .units
            .iter()
            .map(|u| run_unit_shared(u, &job.obstacles, job.base.as_ref(), extend))
            .collect(),
    });
    let route_wall = t0.elapsed();

    // ---- Deterministic write-back: (board, group, unit) order. ----------
    let mut reports: Vec<Vec<GroupReport>> = groups_per_board
        .iter()
        .map(|&g| Vec::with_capacity(g))
        .collect();
    for (job, out) in jobs.iter().zip(outputs) {
        let board = set.boards[job.board].board_mut();
        let (traces, busy) = apply_outputs(board, out.outputs);
        reports[job.board].push(GroupReport {
            target: job.target,
            traces,
            runtime: busy,
        });
    }

    FleetReport {
        reports,
        stats: FleetStats {
            boards: n_boards,
            jobs: n_jobs,
            units: units_total,
            libraries,
            library_polygons,
            base_build,
            route_wall,
            scheduler,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meander_core::match_all_groups;
    use meander_layout::gen::fleet_boards_small;

    fn serial_extend() -> ExtendConfig {
        ExtendConfig {
            parallel: false,
            ..Default::default()
        }
    }

    /// Fleet results must match per-board sequential `match_all_groups`
    /// exactly — geometry bits included — in both sharing modes.
    #[test]
    fn fleet_matches_sequential_bitwise() {
        for share in [true, false] {
            let fleet = fleet_boards_small(5, 21, 42);
            let mut set = BoardSet::new(fleet.boards.clone());
            let report = route_fleet(
                &mut set,
                &FleetConfig {
                    extend: serial_extend(),
                    workers: Some(3),
                    share_library: share,
                },
            );
            assert_eq!(report.stats.boards, 5);
            assert_eq!(
                report.stats.scheduler.total_executed() as usize,
                report.stats.jobs
            );

            for (b, lb) in fleet.boards.iter().enumerate() {
                let mut reference = lb.to_board();
                let want = match_all_groups(&mut reference, &serial_extend());
                let got = &report.reports[b];
                assert_eq!(want.len(), got.len(), "share={share} board {b}");
                for (w, g) in want.iter().zip(got.iter()) {
                    assert_eq!(w.target.to_bits(), g.target.to_bits());
                    assert_eq!(w.traces.len(), g.traces.len());
                    for (x, y) in w.traces.iter().zip(&g.traces) {
                        assert_eq!(x.id, y.id);
                        assert_eq!(x.patterns, y.patterns);
                        assert_eq!(x.achieved.to_bits(), y.achieved.to_bits());
                        assert_eq!(x.initial.to_bits(), y.initial.to_bits());
                        assert_eq!(x.via_msdtw, y.via_msdtw);
                    }
                }
                // Geometry: the fleet board's local part must now hold the
                // exact routed centerlines of the reference.
                for (id, t) in reference.traces() {
                    let routed = set.boards()[b].board().trace(id).unwrap();
                    assert_eq!(
                        t.centerline(),
                        routed.centerline(),
                        "share={share} board {b} trace {id:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_mode_builds_one_base() {
        let fleet = fleet_boards_small(4, 9, 13);
        let mut set = BoardSet::new(fleet.boards);
        let report = route_fleet(&mut set, &FleetConfig::default());
        assert_eq!(report.stats.libraries, 1);
        assert!(report.stats.library_polygons > 0);
        assert!(report.stats.base_build > Duration::ZERO);
        assert_eq!(report.reports.len(), 4);
        // Unshared mode reports the library but builds no base.
        let fleet = fleet_boards_small(4, 9, 13);
        let mut set = BoardSet::new(fleet.boards);
        let report = route_fleet(
            &mut set,
            &FleetConfig {
                share_library: false,
                ..Default::default()
            },
        );
        assert_eq!(report.stats.libraries, 1);
        assert_eq!(report.stats.base_build, Duration::ZERO);
    }

    #[test]
    fn empty_fleet() {
        let mut set = BoardSet::new(vec![]);
        let report = route_fleet(&mut set, &FleetConfig::default());
        assert_eq!(report.stats.boards, 0);
        assert_eq!(report.stats.jobs, 0);
        assert!(report.reports.is_empty());
    }
}
