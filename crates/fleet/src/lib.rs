//! # meander-fleet
//!
//! Multi-board batch routing: the serving regime where many boards —
//! sharing one immutable obstacle library — are length-matched as a single
//! workload.
//!
//! The single-board flow ([`meander_core::match_all_groups`]) rebuilds the
//! world's spatial index per trace and fans units out through one atomic
//! cursor. A fleet changes both economics:
//!
//! * **Shared obstacle libraries.** Boards reference an
//!   [`meander_layout::ObstacleLibrary`]; the engine inflates and
//!   edge-indexes it **once** ([`meander_core::WorldBase`]) and every
//!   trace of every board overlays only its per-trace remainder
//!   ([`meander_index::OverlayIndex`]) — the index construction the
//!   single-board flow repeats per trace is amortized across the fleet.
//! * **Work stealing.** `boards × groups` jobs of uneven cost spread over
//!   per-worker deques with steal-half rebalancing ([`steal::steal_map`]),
//!   generalizing the single atomic-cursor `par_map`.
//! * **Deterministic write-back.** Results land in input-order slots and
//!   write back in `(board, group, unit)` order, so fleet output is
//!   **bit-identical** to routing each board's materialized twin
//!   sequentially — any worker count, both sharing modes (property-tested
//!   in `tests/determinism.rs`).
//!
//! ```
//! use meander_fleet::{route_fleet, BoardSet, FleetConfig};
//! use meander_layout::gen::fleet_boards_small;
//!
//! let fleet = fleet_boards_small(3, 7, 11);
//! let mut set = BoardSet::new(fleet.boards);
//! let report = route_fleet(&mut set, &FleetConfig::default());
//! assert_eq!(report.reports.len(), 3);
//! // Every group routed close to its target.
//! for board in &report.reports {
//!     for group in board {
//!         assert!(group.max_error() < 0.05, "err {}", group.max_error());
//!     }
//! }
//! ```

pub mod engine;
pub mod steal;

pub use engine::{route_fleet, BoardSet, FleetConfig, FleetReport, FleetStats};
pub use steal::{steal_map, StealCounters};
