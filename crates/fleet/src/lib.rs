//! # meander-fleet
//!
//! Multi-board batch routing: the serving regime where many boards —
//! sharing one immutable obstacle library — are length-matched as a single
//! workload.
//!
//! The single-board flow ([`meander_core::match_all_groups`]) rebuilds the
//! world's spatial index per trace and fans units out through one atomic
//! cursor. A fleet changes both economics:
//!
//! * **Shared obstacle libraries.** Boards reference an
//!   [`meander_layout::ObstacleLibrary`]; the engine inflates and
//!   edge-indexes it **once** ([`meander_core::WorldBase`]) and every
//!   trace of every board overlays only its per-trace remainder
//!   ([`meander_index::OverlayIndex`]) — the index construction the
//!   single-board flow repeats per trace is amortized across the fleet.
//! * **Priority-bucketed scheduling.** Per-unit work packets spread over
//!   per-worker deques with steal-half rebalancing inside typed priority
//!   buckets ([`sched::Scheduler`]: `Interactive` > `Batch` >
//!   `Speculative` with strict opening conditions), generalizing the
//!   single atomic-cursor `par_map`.
//! * **Deterministic write-back.** Results land in input-order slots and
//!   write back in `(board, group, unit)` order, so fleet output is
//!   **bit-identical** to routing each board's materialized twin
//!   sequentially — any worker count, both sharing modes (property-tested
//!   in `tests/determinism.rs`).
//!
//! Serving many boards also changes the *failure* economics: one bad
//! board must cost one board, never the batch. The engine isolates four
//! failure domains (see [`engine`]'s module docs):
//!
//! * **Validation** — malformed boards are rejected up front with a typed
//!   [`meander_layout::ValidationError`] ([`BoardOutcome::Rejected`]);
//! * **Panics** — each job runs under `catch_unwind`; a crash becomes
//!   [`BoardOutcome::Failed`] and the pool survives;
//! * **Deadlines / cancellation** — a [`CancelToken`], a fleet deadline,
//!   and per-board budgets are polled at pop and unit boundaries;
//! * **Write-back** — atomic per board: fully [`BoardOutcome::Routed`]
//!   (bit-identical to sequential) or geometry untouched.
//!
//! On top of the engine sits a **recovery layer**
//! ([`route_fleet_resilient`]): failed boards walk a deterministic
//! retry/degrade ladder ([`RetryPolicy`]) onto cheaper known-safe engine
//! shapes, overload is shed loudly under an admission unit budget and a
//! fleet-wide retry token bucket ([`AdmissionPolicy`]), every attempt is
//! journaled, and boards that panic on every rung are quarantined with a
//! delta-debugged minimal repro ([`repro::minimize`]).
//!
//! The `fault` cargo feature adds a deterministic chaos harness
//! (`FaultPlan`): seeded panic/delay/rejection
//! injection keyed on input-order indices — plus transient
//! (attempt-scoped) faults and bounded delay jitter for the resilience
//! suite — so the chaos suite can assert unaffected boards stay
//! bit-identical under every scheduling.
//!
//! ```
//! use meander_fleet::{route_fleet, BoardSet, FleetConfig};
//! use meander_layout::gen::fleet_boards_small;
//!
//! let fleet = fleet_boards_small(3, 7, 11);
//! let mut set = BoardSet::new(fleet.boards);
//! let report = route_fleet(&mut set, &FleetConfig::default());
//! assert_eq!(report.reports.len(), 3);
//! // Every group routed close to its target.
//! for board in &report.reports {
//!     for group in board {
//!         assert!(group.max_error() < 0.05, "err {}", group.max_error());
//!     }
//! }
//! ```

// Serving code must never panic on untrusted input: unwraps are linted
// against (tests keep their unwraps — a failing test panics by design).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod cancel;
pub mod edit;
pub mod engine;
#[cfg(feature = "fault")]
pub mod fault;
pub mod outcome;
pub mod repro;
pub mod resilience;
pub mod sched;
pub mod session;
pub mod steal;

pub use cache::{
    board_keys, engine_identity, CacheKey, CacheStats, CachedGroup, CachedUnit, ResultCache,
    DEFAULT_CACHE_BUDGET,
};
pub use cancel::CancelToken;
pub use edit::DamageReport;
pub use engine::{
    route_fleet, warm_fleet_cache, BoardSet, FleetConfig, FleetReport, FleetStats, WarmupReport,
};
#[cfg(feature = "fault")]
pub use fault::FaultPlan;
pub use meander_layout::{Edit, EditScope};
pub use outcome::{BoardOutcome, DegradeStep, JobError, LatencyHistogram, ShedReason};
pub use repro::MinimizedRepro;
pub use resilience::{
    route_fleet_resilient, AdmissionPolicy, AttemptJournal, AttemptRecord, Quarantine,
    QuarantineEntry, ResilientReport, RetryPolicy,
};
pub use sched::{run_packets, SchedCounters, Scheduler, Tier};
pub use session::FleetSession;
pub use steal::{steal_try_map, JobPanic, JobStatus, StealCounters};
