//! Phase-bucketed, priority-aware work-packet scheduler: typed tiers with
//! opening conditions, per-worker deques with steal-half rebalancing, and
//! a worker monitor with parked/active accounting.
//!
//! ## Why buckets
//!
//! The flat steal pool ([`crate::steal::steal_try_map`]) treats every job
//! alike: an interactive serving re-route submitted while a 1000-board
//! batch fleet is draining queues behind it and waits out the whole
//! backlog. This scheduler layers **priority buckets** over the same
//! per-worker deque + steal-half machinery (mmtk-core's
//! `work_bucket`/`worker`/`worker_monitor` is the exemplar shape):
//!
//! * [`Tier::Interactive`] — serving re-routes ([`crate::FleetSession`]);
//! * [`Tier::Batch`] — fleet routing ([`crate::route_fleet`] and the
//!   resilience layer's retry sub-fleets);
//! * [`Tier::Speculative`] — cache warm-up ([`crate::warm_fleet_cache`]),
//!   work that is pure opportunity and must never delay real requests.
//!
//! **Opening condition:** a bucket is claimable only when every higher
//! tier is *drained* — no packets queued **or in flight** — or has
//! explicitly yielded ([`Scheduler::set_yield`]). Workers re-evaluate the
//! condition at every pop boundary, so an interactive packet arriving
//! mid-batch preempts the batch after at most one in-flight packet per
//! worker: that is the **preemption seam**, and
//! [`SchedCounters::preemptions`] counts every time a worker jumps from a
//! lower bucket to a higher one that still left the lower bucket pending.
//!
//! ## Worker monitor
//!
//! Workers with nothing claimable **park** on a condvar instead of
//! spinning; submissions and bucket drains bump a monitor epoch and wake
//! them. [`SchedCounters`] exposes the accounting — parks, unparks,
//! per-bucket packets executed and peak occupancy, steal traffic — so
//! steal behavior is finally observable ([`Scheduler::counters`]; note
//! all cross-worker counters read zero on a 1-CPU host where one worker
//! drains everything it seeded).
//!
//! ## Why scheduling policy cannot change output
//!
//! The contract is inherited from `steal.rs` unchanged: packets snapshot
//! their inputs, each packet's result lands in the slot of its input
//! index, and callers consume slots in input order. Buckets, parking,
//! yields, steals, and preemption decide only *who runs what when* —
//! never what a packet computes or where its result lands. Fleet output
//! therefore stays bit-identical to sequential for every bucket config,
//! worker count, and preemption schedule (property-tested in
//! `tests/sched.rs`).

use crate::steal::{JobPanic, JobStatus, StealCounters};
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Number of priority buckets.
pub const TIERS: usize = 3;

/// Priority bucket of a work packet. Lower discriminant = higher
/// priority; see the [module docs](self) for the opening condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Serving re-routes: latency-bound, always claimed first.
    Interactive = 0,
    /// Fleet routing: throughput work, opens when interactive is drained.
    Batch = 1,
    /// Cache warm-up: pure opportunity, opens when everything else is
    /// drained.
    Speculative = 2,
}

impl Tier {
    /// All tiers, highest priority first.
    pub const ALL: [Tier; TIERS] = [Tier::Interactive, Tier::Batch, Tier::Speculative];

    /// Bucket index (0 = highest priority).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase label for logs and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Interactive => "interactive",
            Tier::Batch => "batch",
            Tier::Speculative => "speculative",
        }
    }
}

/// Bucket and monitor observability, cumulative over the scheduler's
/// lifetime (see [`SchedCounters::delta_since`] for per-run attribution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Packets executed per bucket (`[interactive, batch, speculative]`).
    pub packets: [u64; TIERS],
    /// Peak bucket occupancy: the largest queued+in-flight packet count
    /// each bucket ever held (a gauge — kept, not differenced, by
    /// [`SchedCounters::delta_since`]).
    pub peak_pending: [u64; TIERS],
    /// Times a worker parked on the monitor (nothing claimable).
    pub parks: u64,
    /// Times a parked worker was woken by a submission or bucket drain.
    pub unparks: u64,
    /// Times a worker jumped from a lower bucket to a higher one that
    /// left the lower bucket still pending — the preemption seam firing.
    pub preemptions: u64,
    /// Successful steal operations (each may move several packets).
    pub steals: u64,
    /// Packets moved by steals.
    pub stolen_jobs: u64,
    /// Victim probes, including empty-handed ones.
    pub steal_attempts: u64,
}

impl SchedCounters {
    /// Total packets executed across buckets.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Counter movement since `before` (monotonic counters differenced,
    /// peak gauges kept). With a scheduler private to one run this is the
    /// run's exact accounting; with a shared scheduler, concurrent
    /// workloads' packets land in whichever run's window they completed.
    pub fn delta_since(&self, before: &SchedCounters) -> SchedCounters {
        let mut packets = [0u64; TIERS];
        for (t, p) in packets.iter_mut().enumerate() {
            *p = self.packets[t].saturating_sub(before.packets[t]);
        }
        SchedCounters {
            packets,
            peak_pending: self.peak_pending,
            parks: self.parks.saturating_sub(before.parks),
            unparks: self.unparks.saturating_sub(before.unparks),
            preemptions: self.preemptions.saturating_sub(before.preemptions),
            steals: self.steals.saturating_sub(before.steals),
            stolen_jobs: self.stolen_jobs.saturating_sub(before.stolen_jobs),
            steal_attempts: self.steal_attempts.saturating_sub(before.steal_attempts),
        }
    }
}

/// A scheduled packet: type-erased, invoked with the executing worker's
/// id. The generic slot/counter plumbing lives in the wrapper
/// [`Scheduler::run`] builds.
type Packet = Box<dyn FnOnce(usize) + Send>;

struct Monitor {
    /// Bumped on every submission, bucket drain, and shutdown; parked
    /// workers wait for it to move.
    epoch: u64,
    /// Workers currently parked (active = workers − parked).
    parked: usize,
}

struct Inner {
    workers: usize,
    /// `queues[tier][worker]`.
    queues: Vec<Vec<Mutex<VecDeque<Packet>>>>,
    /// Queued + in-flight packets per bucket — the drain condition.
    pending: [AtomicUsize; TIERS],
    /// Buckets that explicitly yield: they stop closing lower buckets
    /// while their packets are in flight.
    yielded: [AtomicBool; TIERS],
    shutdown: AtomicBool,
    monitor: Mutex<Monitor>,
    cv: Condvar,
    packets: [AtomicU64; TIERS],
    peak: [AtomicUsize; TIERS],
    parks: AtomicU64,
    unparks: AtomicU64,
    preemptions: AtomicU64,
    steals: AtomicU64,
    stolen_jobs: AtomicU64,
    steal_attempts: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A poisoned queue/monitor mutex can only mean a panic inside this
    // module's own bookkeeping (packet bodies run under catch_unwind);
    // recover the state rather than wedging the pool.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Inner {
    /// Bumps the monitor epoch and wakes every parked worker (and any
    /// parked submitters re-checking their run's completion).
    fn wake_all(&self) {
        {
            let mut m = lock(&self.monitor);
            m.epoch += 1;
        }
        self.cv.notify_all();
    }

    fn submit(&self, tier: Tier, packets: Vec<Packet>) {
        let t = tier.index();
        let n = packets.len();
        if n == 0 {
            return;
        }
        let now = self.pending[t].fetch_add(n, Ordering::SeqCst) + n;
        let mut peak = self.peak[t].load(Ordering::Relaxed);
        while now > peak {
            match self.peak[t].compare_exchange_weak(
                peak,
                now,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
        // Round-robin seeding, same as the flat pool: packet i starts on
        // worker i % workers.
        for (i, p) in packets.into_iter().enumerate() {
            lock(&self.queues[t][i % self.workers]).push_back(p);
        }
        self.wake_all();
    }

    /// The pop boundary: scan buckets highest-priority first, honoring
    /// the opening condition. Returns the claimed packet and its tier, or
    /// `None` when nothing is claimable (park).
    fn claim(&self, w: usize) -> Option<(usize, Packet)> {
        for t in 0..TIERS {
            if self.pending[t].load(Ordering::SeqCst) == 0 {
                continue; // drained: the next bucket may open
            }
            if let Some(p) = lock(&self.queues[t][w]).pop_front() {
                return Some((t, p));
            }
            // Dry: probe victims round-robin from the right neighbor,
            // stealing the back half of the first non-empty deque.
            for k in 1..self.workers {
                let v = (w + k) % self.workers;
                self.steal_attempts.fetch_add(1, Ordering::Relaxed);
                let grabbed: VecDeque<Packet> = {
                    let mut victim = lock(&self.queues[t][v]);
                    let keep = victim.len() / 2;
                    victim.split_off(keep)
                };
                if grabbed.is_empty() {
                    continue;
                }
                self.steals.fetch_add(1, Ordering::Relaxed);
                self.stolen_jobs
                    .fetch_add(grabbed.len() as u64, Ordering::Relaxed);
                let mut own = lock(&self.queues[t][w]);
                own.extend(grabbed);
                let p = own.pop_front();
                drop(own);
                if let Some(p) = p {
                    return Some((t, p));
                }
            }
            // Bucket t's remaining packets are all in flight elsewhere.
            // Lower buckets stay closed until it drains — unless it
            // explicitly yields.
            if !self.yielded[t].load(Ordering::Relaxed) {
                return None;
            }
        }
        None
    }

    fn worker_loop(self: &Arc<Inner>, w: usize) {
        let mut last_tier: Option<usize> = None;
        loop {
            let seen = lock(&self.monitor).epoch;
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.claim(w) {
                Some((t, packet)) => {
                    if let Some(last) = last_tier {
                        if t < last && self.pending[last].load(Ordering::SeqCst) > 0 {
                            self.preemptions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    last_tier = Some(t);
                    // Packet wrappers isolate their own panics into job
                    // slots (and count themselves in packets[t] before
                    // releasing their run's completion guard); this catch
                    // is the belt under the braces so a raw packet can
                    // never kill the worker either.
                    let _ = catch_unwind(AssertUnwindSafe(|| packet(w)));
                    if self.pending[t].fetch_sub(1, Ordering::SeqCst) == 1 {
                        // Bucket drained: lower buckets open, wake the
                        // parked workers to claim them.
                        self.wake_all();
                    }
                }
                None => {
                    let mut m = lock(&self.monitor);
                    if m.epoch != seen {
                        continue; // something arrived between scan and lock
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    self.parks.fetch_add(1, Ordering::Relaxed);
                    m.parked += 1;
                    while m.epoch == seen && !self.shutdown.load(Ordering::SeqCst) {
                        m = match self.cv.wait(m) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                    m.parked -= 1;
                    self.unparks.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn counters(&self) -> SchedCounters {
        let mut packets = [0u64; TIERS];
        let mut peak = [0u64; TIERS];
        for t in 0..TIERS {
            packets[t] = self.packets[t].load(Ordering::Relaxed);
            peak[t] = self.peak[t].load(Ordering::Relaxed) as u64;
        }
        SchedCounters {
            packets,
            peak_pending: peak,
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            preemptions: self.preemptions.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            stolen_jobs: self.stolen_jobs.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
        }
    }
}

/// Per-run completion and accounting state, shared between the submitter
/// and the packets it spawned.
struct RunShared<R> {
    slots: Vec<Mutex<Option<JobStatus<R>>>>,
    remaining: AtomicUsize,
    executed: Vec<AtomicU64>,
    busy_nanos: Vec<AtomicU64>,
    panics: Vec<AtomicU64>,
    skipped: AtomicU64,
    done: Mutex<bool>,
    cv: Condvar,
}

impl<R> RunShared<R> {
    fn new(n: usize, workers: usize) -> RunShared<R> {
        RunShared {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            busy_nanos: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            panics: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            skipped: AtomicU64::new(0),
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = match self.cv.wait(done) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// Accounts a claimed packet as finished even if slot assignment unwinds
/// — without this a crashing packet would leave its submitter waiting
/// forever.
struct FinishGuard<R>(Arc<RunShared<R>>);

impl<R> Drop for FinishGuard<R> {
    fn drop(&mut self) {
        if self.0.remaining.fetch_sub(1, Ordering::Release) == 1 {
            *lock(&self.0.done) = true;
            self.0.cv.notify_all();
        }
    }
}

/// A persistent priority-bucketed worker pool. Create one per serving
/// process (or let [`run_packets`] spin up an ephemeral one per call),
/// share it via `Arc`, and submit runs from any thread — concurrent runs
/// interleave under the bucket opening condition.
pub struct Scheduler {
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.inner.workers)
            .finish()
    }
}

impl Scheduler {
    /// Spawns `workers` (≥ 1) parked worker threads.
    pub fn new(workers: usize) -> Scheduler {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            workers,
            queues: (0..TIERS)
                .map(|_| (0..workers).map(|_| Mutex::new(VecDeque::new())).collect())
                .collect(),
            pending: Default::default(),
            yielded: Default::default(),
            shutdown: AtomicBool::new(false),
            monitor: Mutex::new(Monitor {
                epoch: 0,
                parked: 0,
            }),
            cv: Condvar::new(),
            packets: Default::default(),
            peak: Default::default(),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            preemptions: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            stolen_jobs: AtomicU64::new(0),
            steal_attempts: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("meander-sched-{w}"))
                    .spawn(move || inner.worker_loop(w))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler { inner, threads }
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Workers currently parked (a gauge; `workers() - parked` are
    /// active or scanning).
    pub fn parked(&self) -> usize {
        lock(&self.inner.monitor).parked
    }

    /// Cumulative bucket/monitor counters.
    pub fn counters(&self) -> SchedCounters {
        self.inner.counters()
    }

    /// Marks `tier` as yielding: while set, its in-flight packets no
    /// longer close lower buckets (queued packets still claim their
    /// bucket's priority). Use when a high tier blocks on something
    /// external and idle workers should chew lower-tier work meanwhile.
    pub fn set_yield(&self, tier: Tier, yielded: bool) {
        self.inner.yielded[tier.index()].store(yielded, Ordering::Relaxed);
        self.inner.wake_all();
    }

    /// Submits one packet per item into `tier` and blocks until every
    /// packet resolved, returning one [`JobStatus`] per item in input
    /// order, the run's worker-level counters, and the scheduler counter
    /// movement over the run's window.
    ///
    /// Same isolation contract as [`crate::steal::steal_try_map`]: a
    /// panicking packet yields [`JobStatus::Panicked`] in its own slot
    /// and the pool survives; `stop` is polled when each packet is
    /// claimed — tripped packets resolve [`JobStatus::Skipped`] without
    /// running `f`.
    pub fn run<T, R, F>(
        &self,
        tier: Tier,
        items: Arc<Vec<T>>,
        stop: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
        f: Arc<F>,
    ) -> (Vec<JobStatus<R>>, StealCounters, SchedCounters)
    where
        T: Send + Sync + 'static,
        R: Send + 'static,
        F: Fn(&T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        let workers = self.inner.workers;
        if n == 0 {
            return (
                Vec::new(),
                StealCounters {
                    workers,
                    executed: vec![0; workers],
                    busy: vec![Duration::ZERO; workers],
                    panics: vec![0; workers],
                    ..Default::default()
                },
                SchedCounters::default(),
            );
        }
        let before = self.inner.counters();
        let state: Arc<RunShared<R>> = Arc::new(RunShared::new(n, workers));
        let packets: Vec<Packet> = (0..n)
            .map(|i| {
                let state = Arc::clone(&state);
                let items = Arc::clone(&items);
                let f = Arc::clone(&f);
                let stop = stop.clone();
                let inner = Arc::clone(&self.inner);
                Box::new(move |w: usize| {
                    // Declared first ⇒ drops last: the packet is counted
                    // in packets[t] before the submitter can wake and
                    // snapshot its counter delta.
                    let _finish = FinishGuard(Arc::clone(&state));
                    inner.packets[tier.index()].fetch_add(1, Ordering::Relaxed);
                    let status = if stop.as_ref().is_some_and(|s| s()) {
                        state.skipped.fetch_add(1, Ordering::Relaxed);
                        JobStatus::Skipped
                    } else {
                        let t0 = Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| f(&items[i])));
                        let nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        state.busy_nanos[w].fetch_add(nanos, Ordering::Relaxed);
                        state.executed[w].fetch_add(1, Ordering::Relaxed);
                        match result {
                            Ok(r) => JobStatus::Done(r),
                            Err(payload) => {
                                state.panics[w].fetch_add(1, Ordering::Relaxed);
                                JobStatus::Panicked(JobPanic::from_payload(payload))
                            }
                        }
                    };
                    *lock(&state.slots[i]) = Some(status);
                }) as Packet
            })
            .collect();
        self.inner.submit(tier, packets);
        state.wait();
        let delta = self.inner.counters().delta_since(&before);

        let executed: Vec<u64> = state
            .executed
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let busy: Vec<Duration> = state
            .busy_nanos
            .iter()
            .map(|a| Duration::from_nanos(a.load(Ordering::Relaxed)))
            .collect();
        let panics: Vec<u64> = state
            .panics
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        let skipped = state.skipped.load(Ordering::Relaxed);
        let statuses: Vec<JobStatus<R>> = match Arc::try_unwrap(state) {
            Ok(state) => state
                .slots
                .into_iter()
                .map(|s| match s.into_inner() {
                    Ok(Some(status)) => status,
                    _ => JobStatus::Skipped,
                })
                .collect(),
            // A packet's Arc clone can outlive its FinishGuard by an
            // instant; fall back to draining the slots in place.
            Err(state) => state
                .slots
                .iter()
                .map(|s| lock(s).take().unwrap_or(JobStatus::Skipped))
                .collect(),
        };
        let counters = StealCounters {
            workers,
            steals: delta.steals,
            stolen_jobs: delta.stolen_jobs,
            steal_attempts: delta.steal_attempts,
            executed,
            busy,
            panics,
            skipped,
        };
        (statuses, counters, delta)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.wake_all();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// Routes a packet run to `sched` when attached, an ephemeral
/// [`Scheduler`] when parallelism is wanted, or an inline serial loop
/// (same isolation, same stop semantics, no threads) for 1 worker or ≤ 1
/// item — the consumer-facing entry `route_fleet`, the serving session,
/// and the warm-up producer all share.
pub fn run_packets<T, R, F>(
    sched: Option<&Arc<Scheduler>>,
    tier: Tier,
    workers: usize,
    items: Arc<Vec<T>>,
    stop: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    f: Arc<F>,
) -> (Vec<JobStatus<R>>, StealCounters, SchedCounters)
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    if let Some(s) = sched {
        return s.run(tier, items, stop, f);
    }
    let n = items.len();
    if workers <= 1 || n <= 1 {
        let t0 = Instant::now();
        let mut out: Vec<JobStatus<R>> = Vec::with_capacity(n);
        let mut panics = 0u64;
        let mut executed = 0u64;
        for item in items.iter() {
            if stop.as_ref().is_some_and(|s| s()) {
                out.push(JobStatus::Skipped);
                continue;
            }
            executed += 1;
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => out.push(JobStatus::Done(r)),
                Err(payload) => {
                    panics += 1;
                    out.push(JobStatus::Panicked(JobPanic::from_payload(payload)));
                }
            }
        }
        let skipped = out
            .iter()
            .filter(|s| matches!(s, JobStatus::Skipped))
            .count() as u64;
        let counters = StealCounters {
            workers: 1,
            executed: vec![executed],
            busy: vec![t0.elapsed()],
            panics: vec![panics],
            skipped,
            ..Default::default()
        };
        let mut sched_counters = SchedCounters::default();
        sched_counters.packets[tier.index()] = executed;
        sched_counters.peak_pending[tier.index()] = n as u64;
        return (out, counters, sched_counters);
    }
    let s = Scheduler::new(workers.min(n));
    s.run(tier, items, stop, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// Execution log: (tier, item) pairs in completion order.
    type Log = Arc<Mutex<Vec<(Tier, usize)>>>;

    fn logging_run(
        sched: &Arc<Scheduler>,
        tier: Tier,
        n: usize,
        spin: Duration,
        log: &Log,
    ) -> Vec<JobStatus<usize>> {
        let log = Arc::clone(log);
        let items: Arc<Vec<usize>> = Arc::new((0..n).collect());
        let (statuses, _, _) = sched.run(
            tier,
            items,
            None,
            Arc::new(move |&i: &usize| {
                std::thread::sleep(spin);
                lock(&log).push((tier, i));
                i
            }),
        );
        statuses
    }

    #[test]
    fn results_land_in_input_order() {
        let sched = Arc::new(Scheduler::new(4));
        let items: Arc<Vec<u64>> = Arc::new((0..257).collect());
        let (out, counters, delta) = sched.run(
            Tier::Batch,
            Arc::clone(&items),
            None,
            Arc::new(|&x: &u64| x * x),
        );
        let got: Vec<u64> = out.into_iter().map(|s| s.done().unwrap()).collect();
        assert_eq!(got, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        assert_eq!(counters.total_executed(), 257);
        assert_eq!(delta.packets[Tier::Batch.index()], 257);
        assert_eq!(delta.packets[Tier::Interactive.index()], 0);
        assert!(delta.peak_pending[Tier::Batch.index()] >= 1);
    }

    #[test]
    fn serial_fallback_matches() {
        let items: Arc<Vec<u64>> = Arc::new((0..64).collect());
        let (out, counters, delta) = run_packets(
            None,
            Tier::Interactive,
            1,
            Arc::clone(&items),
            None,
            Arc::new(|&x: &u64| x + 1),
        );
        let got: Vec<u64> = out.into_iter().map(|s| s.done().unwrap()).collect();
        assert_eq!(got, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
        assert_eq!(counters.workers, 1);
        assert_eq!(delta.packets[Tier::Interactive.index()], 64);
    }

    /// Once any interactive packet is claimed, every remaining interactive
    /// packet is claimed before any batch packet (the scan always visits
    /// the interactive bucket first) — so with one worker, the interactive
    /// run is contiguous in the execution log.
    #[test]
    fn interactive_preempts_batch_at_packet_boundary() {
        let sched = Arc::new(Scheduler::new(1));
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let batch = {
            let sched = Arc::clone(&sched);
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                logging_run(&sched, Tier::Batch, 24, Duration::from_millis(4), &log)
            })
        };
        // Let the batch get going, then demand interactive service.
        std::thread::sleep(Duration::from_millis(20));
        logging_run(&sched, Tier::Interactive, 6, Duration::from_millis(1), &log);
        batch.join().unwrap();
        let entries = lock(&log).clone();
        assert_eq!(entries.len(), 30);
        let first_i = entries
            .iter()
            .position(|(t, _)| *t == Tier::Interactive)
            .expect("interactive ran");
        let last_i = entries
            .iter()
            .rposition(|(t, _)| *t == Tier::Interactive)
            .unwrap();
        assert!(
            first_i > 0,
            "batch started first (submitted 20ms earlier): {entries:?}"
        );
        assert!(
            entries[first_i..=last_i]
                .iter()
                .all(|(t, _)| *t == Tier::Interactive),
            "no batch packet may interleave an interactive wave: {entries:?}"
        );
        assert!(
            last_i < entries.len() - 1,
            "batch resumed after the wave: {entries:?}"
        );
        let c = sched.counters();
        assert!(
            c.preemptions >= 1,
            "the worker jumped buckets mid-batch: {c:?}"
        );
    }

    /// The opening condition is strict: while an interactive packet is in
    /// flight, a batch packet is not started even by an idle worker — the
    /// batch bucket opens only when interactive drains.
    #[test]
    fn lower_bucket_waits_for_higher_drain() {
        let sched = Arc::new(Scheduler::new(2));
        let interactive_done = Arc::new(AtomicBool::new(false));
        let overlap = Arc::new(AtomicBool::new(false));
        let handle = {
            let sched = Arc::clone(&sched);
            let done = Arc::clone(&interactive_done);
            std::thread::spawn(move || {
                let done2 = Arc::clone(&done);
                let (st, _, _) = sched.run(
                    Tier::Interactive,
                    Arc::new(vec![0usize]),
                    None,
                    Arc::new(move |_: &usize| {
                        std::thread::sleep(Duration::from_millis(60));
                        done2.store(true, Ordering::SeqCst);
                    }),
                );
                assert!(st[0].is_done());
            })
        };
        std::thread::sleep(Duration::from_millis(15));
        let done = Arc::clone(&interactive_done);
        let overlap2 = Arc::clone(&overlap);
        let (st, _, _) = sched.run(
            Tier::Batch,
            Arc::new(vec![0usize]),
            None,
            Arc::new(move |_: &usize| {
                if !done.load(Ordering::SeqCst) {
                    overlap2.store(true, Ordering::SeqCst);
                }
            }),
        );
        assert!(st[0].is_done());
        handle.join().unwrap();
        assert!(
            !overlap.load(Ordering::SeqCst),
            "batch packet ran while interactive was still in flight"
        );
    }

    /// `set_yield` relaxes exactly that: a yielding interactive bucket
    /// lets the idle worker run batch work while it sleeps.
    #[test]
    fn yielding_bucket_opens_lower_tiers() {
        let sched = Arc::new(Scheduler::new(2));
        sched.set_yield(Tier::Interactive, true);
        let interactive_done = Arc::new(AtomicBool::new(false));
        let overlapped = Arc::new(AtomicBool::new(false));
        let handle = {
            let sched = Arc::clone(&sched);
            let done = Arc::clone(&interactive_done);
            std::thread::spawn(move || {
                let done2 = Arc::clone(&done);
                let (st, _, _) = sched.run(
                    Tier::Interactive,
                    Arc::new(vec![0usize]),
                    None,
                    Arc::new(move |_: &usize| {
                        std::thread::sleep(Duration::from_millis(120));
                        done2.store(true, Ordering::SeqCst);
                    }),
                );
                assert!(st[0].is_done());
            })
        };
        std::thread::sleep(Duration::from_millis(15));
        let done = Arc::clone(&interactive_done);
        let overlapped2 = Arc::clone(&overlapped);
        let (st, _, _) = sched.run(
            Tier::Batch,
            Arc::new(vec![0usize]),
            None,
            Arc::new(move |_: &usize| {
                if !done.load(Ordering::SeqCst) {
                    overlapped2.store(true, Ordering::SeqCst);
                }
            }),
        );
        assert!(st[0].is_done());
        handle.join().unwrap();
        assert!(
            overlapped.load(Ordering::SeqCst),
            "a yielded interactive bucket must not block batch work"
        );
    }

    #[test]
    fn panicking_packet_is_isolated() {
        let sched = Arc::new(Scheduler::new(2));
        for _ in 0..2 {
            let items: Arc<Vec<u32>> = Arc::new((0..16).collect());
            let (statuses, counters, _) = sched.run(
                Tier::Batch,
                items,
                None,
                Arc::new(|&x: &u32| {
                    assert!(x != 7, "boom at 7");
                    x * 10
                }),
            );
            for (i, s) in statuses.iter().enumerate() {
                match s {
                    JobStatus::Done(v) => assert_eq!(*v, i as u32 * 10),
                    JobStatus::Panicked(p) => {
                        assert_eq!(i, 7);
                        assert!(p.message().contains("boom at 7"));
                    }
                    JobStatus::Skipped => panic!("nothing may be skipped"),
                }
            }
            assert_eq!(counters.total_panics(), 1);
            assert_eq!(counters.total_executed(), 16);
        }
    }

    #[test]
    fn stop_predicate_skips_packets() {
        let sched = Arc::new(Scheduler::new(2));
        let items: Arc<Vec<u32>> = Arc::new((0..32).collect());
        let stop: Arc<dyn Fn() -> bool + Send + Sync> = Arc::new(|| true);
        let (statuses, counters, _) =
            sched.run(Tier::Batch, items, Some(stop), Arc::new(|&x: &u32| x));
        assert!(statuses.iter().all(|s| matches!(s, JobStatus::Skipped)));
        assert_eq!(counters.skipped, 32);
        assert_eq!(counters.total_executed(), 0);
    }

    #[test]
    fn workers_park_when_idle() {
        let sched = Arc::new(Scheduler::new(3));
        // Give the spawned workers a moment to find nothing and park.
        for _ in 0..100 {
            if sched.parked() == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(sched.parked(), 3, "idle workers park on the monitor");
        let c0 = sched.counters();
        assert!(c0.parks >= 3);
        let items: Arc<Vec<u64>> = Arc::new((0..64).collect());
        let (_, _, delta) = sched.run(Tier::Speculative, items, None, Arc::new(|&x: &u64| x));
        assert_eq!(delta.packets[Tier::Speculative.index()], 64);
        let c1 = sched.counters();
        assert!(c1.unparks >= 1, "submission woke at least one worker");
    }

    #[test]
    fn counters_are_consistent() {
        let sched = Arc::new(Scheduler::new(4));
        let items: Arc<Vec<u64>> = Arc::new((0..500).collect());
        let (out, c, delta) = sched.run(Tier::Batch, items, None, Arc::new(|&x: &u64| x));
        assert_eq!(out.len(), 500);
        assert!(c.steal_attempts >= c.steals);
        assert!(c.stolen_jobs >= c.steals);
        assert_eq!(c.total_executed(), 500);
        assert_eq!(delta.total_packets(), 500);
        assert!(delta.peak_pending[Tier::Batch.index()] <= 500);
    }

    #[test]
    fn empty_run_returns_immediately() {
        let sched = Arc::new(Scheduler::new(2));
        let items: Arc<Vec<u64>> = Arc::new(Vec::new());
        let (out, c, delta) = sched.run(Tier::Interactive, items, None, Arc::new(|&x: &u64| x));
        assert!(out.is_empty());
        assert_eq!(c.total_executed(), 0);
        assert_eq!(delta.total_packets(), 0);
    }

    #[test]
    fn tier_labels_and_order() {
        assert!(Tier::Interactive < Tier::Batch);
        assert!(Tier::Batch < Tier::Speculative);
        assert_eq!(Tier::ALL.len(), TIERS);
        assert_eq!(Tier::Interactive.label(), "interactive");
        assert_eq!(Tier::Speculative.index(), 2);
    }
}
