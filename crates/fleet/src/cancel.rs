//! Cooperative cancellation for fleet runs.
//!
//! A [`CancelToken`] is a cloneable flag shared between the caller and the
//! engine. The caller keeps one clone (typically on another thread, wired
//! to a signal handler or an RPC's disconnect), hands another to
//! [`crate::FleetConfig::cancel`], and fires it at any time. The engine
//! polls it at two granularities:
//!
//! * **pop boundaries** — before a worker claims its next `(board, group)`
//!   job (see [`crate::steal::steal_try_map`]'s stop predicate);
//! * **unit boundaries** — between the traces/pairs of a job already in
//!   flight.
//!
//! So a fired token stops the fleet within one *unit's* worth of work per
//! worker — not one job's, and certainly not the whole fleet's. Boards
//! whose jobs all completed before the trip are written back normally
//! ([`crate::BoardOutcome::Routed`]); boards that lost at least one job
//! report [`crate::BoardOutcome::Cancelled`] and keep their input
//! geometry untouched.
//!
//! Cancellation is level-triggered and sticky: once fired, every
//! observer sees it fired forever. Firing twice is a no-op.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe cancellation flag.
///
/// All clones observe the same flag. `Default` starts unfired.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Every clone observes the cancellation from now
    /// on; firing again is a no-op.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// `true` once any clone has fired.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled());
        // Sticky and idempotent.
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn fires_across_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().expect("cancel thread");
        assert!(token.is_cancelled());
    }
}
