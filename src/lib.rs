//! # meander — obstacle-aware length-matching routing for any-direction PCB traces
//!
//! Facade crate re-exporting the whole `meander` workspace, a Rust
//! reproduction of *"Obstacle-Aware Length-Matching Routing for Any-Direction
//! Traces in Printed Circuit Board"* (DAC 2024).
//!
//! Most users only need:
//!
//! * [`layout`] to build or load a board,
//! * [`region`] to assign routable areas,
//! * [`core`]'s driver to length-match a group,
//! * [`msdtw`] when the group contains differential pairs,
//! * [`drc`] to verify the result,
//! * [`fleet`] to batch-route many boards sharing an obstacle library
//!   (with an optional content-addressed result cache).
//!
//! ```
//! use meander::geom::{Point, Polyline};
//!
//! let trace = Polyline::new(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
//! assert_eq!(trace.length(), 100.0);
//! ```

pub use meander_core as core;
pub use meander_drc as drc;
pub use meander_fleet as fleet;
pub use meander_geom as geom;
pub use meander_index as index;
pub use meander_layout as layout;
pub use meander_msdtw as msdtw;
pub use meander_region as region;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use meander_core::ExtendConfig;
    pub use meander_geom::{Point, Polygon, Polyline, Rect, Segment, Vector};
    pub use meander_index::{IndexKind, SpatialIndex};
}
