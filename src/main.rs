//! `meander` — command-line length-matching tool.
//!
//! ```text
//! meander check <board.txt>                 run the DRC scan
//! meander match <board.txt> [options]       length-match every group
//!     --out <file>      write the matched board (text format)
//!     --svg <file>      render the matched board
//!     --miter           chamfer right/acute corners per dmiter
//!     --baseline        use the AiDT-like greedy instead of the DP engine
//! meander gen <table1:N | table2:N | anyangle:DEG | diffpair> [--out <file>]
//!                                           synthesize a benchmark board
//! ```
//!
//! Boards use the line-oriented text format of `meander_layout::io`.

use meander_core::baseline::match_group_aidt;
use meander_core::{match_board_group, miter_group, ExtendConfig};
use meander_layout::gen::{any_angle_bus, decoupled_pair, table1_case, table2_case};
use meander_layout::io::{load_board, save_board};
use meander_layout::svg::{render_board, SvgStyle};
use meander_layout::Board;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  meander check <board.txt>
  meander match <board.txt> [--out <file>] [--svg <file>] [--miter] [--baseline]
  meander gen <table1:N | table2:N | anyangle:DEG | diffpair> [--out <file>]";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {
            let path = it.next().ok_or("check needs a board file")?;
            let board = read_board(path)?;
            let violations = board.check();
            if violations.is_empty() {
                println!("DRC clean ({})", board);
                Ok(())
            } else {
                for v in &violations {
                    println!("violation: {v}");
                }
                Err(format!("{} violation(s)", violations.len()))
            }
        }
        Some("match") => {
            let path = it.next().ok_or("match needs a board file")?;
            let rest: Vec<&str> = it.map(String::as_str).collect();
            let mut board = read_board(path)?;
            let config = ExtendConfig::default();
            let use_baseline = rest.contains(&"--baseline");
            let do_miter = rest.contains(&"--miter");
            if board.groups().is_empty() {
                return Err("board has no matching groups".into());
            }
            for gi in 0..board.groups().len() {
                let report = if use_baseline {
                    match_group_aidt(&mut board, gi, &config)
                } else {
                    match_board_group(&mut board, gi, &config)
                };
                println!(
                    "group {}: target {:.3}, max err {:.3}%, avg err {:.3}%, {:?}",
                    board.groups()[gi].name(),
                    report.target,
                    report.max_error() * 100.0,
                    report.avg_error() * 100.0,
                    report.runtime
                );
                if do_miter {
                    let deltas = miter_group(&mut board, gi);
                    let total: f64 = deltas.iter().map(|(_, d)| d).sum();
                    println!("  mitered {} traces (Δlength {total:.3})", deltas.len());
                }
            }
            let violations = board.check();
            println!(
                "DRC after matching: {}",
                if violations.is_empty() {
                    "clean".to_string()
                } else {
                    format!("{} violation(s)", violations.len())
                }
            );
            write_outputs(&board, &rest)?;
            Ok(())
        }
        Some("gen") => {
            let what = it.next().ok_or("gen needs a case spec")?;
            let rest: Vec<&str> = it.map(String::as_str).collect();
            let board = generate(what)?;
            println!("generated: {board}");
            write_outputs(&board, &rest)?;
            if !rest.contains(&"--out") {
                print!("{}", save_board(&board).map_err(|e| e.to_string())?);
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".into()),
    }
}

fn read_board(path: &str) -> Result<Board, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    load_board(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn write_outputs(board: &Board, rest: &[&str]) -> Result<(), String> {
    if let Some(i) = rest.iter().position(|&a| a == "--out") {
        let path = rest.get(i + 1).ok_or("--out needs a path")?;
        let text = save_board(board).map_err(|e| e.to_string())?;
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(i) = rest.iter().position(|&a| a == "--svg") {
        let path = rest.get(i + 1).ok_or("--svg needs a path")?;
        let svg = render_board(board, &SvgStyle::default());
        std::fs::write(path, svg).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn generate(spec: &str) -> Result<Board, String> {
    if let Some(n) = spec.strip_prefix("table1:") {
        let n: usize = n.parse().map_err(|_| "bad table1 case number")?;
        if !(1..=5).contains(&n) {
            return Err("table1 cases are 1–5".into());
        }
        return Ok(table1_case(n).board);
    }
    if let Some(n) = spec.strip_prefix("table2:") {
        let n: usize = n.parse().map_err(|_| "bad table2 case number")?;
        if !(1..=6).contains(&n) {
            return Err("table2 cases are 1–6".into());
        }
        return Ok(table2_case(n).board);
    }
    if let Some(deg) = spec.strip_prefix("anyangle:") {
        let deg: f64 = deg.parse().map_err(|_| "bad angle")?;
        return Ok(any_angle_bus(4, meander_geom::Angle::from_degrees(deg)));
    }
    if spec == "diffpair" {
        return Ok(decoupled_pair(false).board);
    }
    Err(format!("unknown generator `{spec}`"))
}
